//! Per-link fault injection: drops, duplicates, delays, cuts and partitions.
//!
//! The paper's model assumes reliable FIFO channels between correct processes
//! (§3); real networks deliver weaker guarantees, and the protocols recover
//! through retries, re-acks and reconfiguration. This module lets a test or a
//! chaos nemesis weaken individual links (or the whole fabric) in a seeded,
//! deterministic way:
//!
//! * **probabilistic faults** ([`LinkFault`]) — per-send probabilities of
//!   dropping, duplicating or delaying a message, configurable per directed
//!   link or as a fabric-wide default, and scoped to the message network, the
//!   RDMA fabric, or both;
// analyze:allow-file(float-state): fault probabilities are f64 by contract;
// every draw compares one sample from the seeded ChaCha stream against a
// constant, which is bit-identical across platforms (no accumulation, no
// platform-dependent rounding feeding back into protocol state).
//! * **asymmetric cuts** — a [`LinkFault`] with `drop = 1.0` on one direction
//!   only (see [`LinkFault::cut`]);
//! * **named partitions** — groups of processes such that traffic between
//!   different groups of the same partition is dropped until the partition is
//!   healed;
//! * **exempt processes** — the measurement apparatus (the history-recording
//!   client) is not a protocol participant; harnesses mark it exempt so the
//!   observed history is complete and violations cannot hide behind dropped
//!   deliveries.
//!
//! Faults are applied when a message is *scheduled* (sent), not when it is
//! delivered: traffic already in flight when a partition is installed still
//! arrives, exactly like packets already on the wire. Delayed messages do not
//! advance the per-channel FIFO floor, so later sends may overtake them —
//! delay doubles as reordering. A world with no faults configured consumes no
//! randomness for fault decisions, so fault-free runs are bit-identical to
//! runs of a simulator without this module.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Which transport a [`LinkFault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultScope {
    /// Both the message network and the RDMA fabric.
    #[default]
    All,
    /// Only ordinary messages; RDMA writes pass unharmed.
    MessagesOnly,
    /// Only RDMA writes; ordinary messages pass unharmed.
    RdmaOnly,
}

impl FaultScope {
    fn applies(self, is_rdma: bool) -> bool {
        match self {
            FaultScope::All => true,
            FaultScope::MessagesOnly => !is_rdma,
            FaultScope::RdmaOnly => is_rdma,
        }
    }
}

/// Probabilistic fault behaviour of one directed link (or of the whole
/// fabric, when installed as the default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Probability in `[0, 1]` that a send is dropped.
    pub drop: f64,
    /// Probability in `[0, 1]` that a send is delivered twice.
    pub duplicate: f64,
    /// Probability in `[0, 1]` that a send is delayed by an extra duration
    /// drawn uniformly from `delay_micros` (delayed sends may be overtaken by
    /// later ones, i.e. delay implies reordering).
    pub delay: f64,
    /// Inclusive range of the extra delay, in microseconds.
    pub delay_micros: (u64, u64),
    /// Which transport the fault applies to.
    pub scope: FaultScope,
}

impl LinkFault {
    /// A fault configuration that never fires.
    pub const fn none() -> Self {
        LinkFault {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_micros: (0, 0),
            scope: FaultScope::All,
        }
    }

    /// A full cut of the link in the given scope (every send dropped) — the
    /// building block for asymmetric link failures.
    pub const fn cut(scope: FaultScope) -> Self {
        LinkFault {
            drop: 1.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_micros: (0, 0),
            scope,
        }
    }

    /// A deterministic extra delay of exactly `micros` on every send in the
    /// given scope.
    pub const fn delay_all(micros: u64, scope: FaultScope) -> Self {
        LinkFault {
            drop: 0.0,
            duplicate: 0.0,
            delay: 1.0,
            delay_micros: (micros, micros),
            scope,
        }
    }

    /// Uniform background noise: each probability applied independently, with
    /// extra delays up to `max_delay_micros`.
    pub const fn noise(drop: f64, duplicate: f64, delay: f64, max_delay_micros: u64) -> Self {
        LinkFault {
            drop,
            duplicate,
            delay,
            delay_micros: (0, max_delay_micros),
            scope: FaultScope::All,
        }
    }

    fn is_none(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.delay <= 0.0
    }
}

/// What the fault plane decided about one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FaultDecision {
    /// The send is dropped entirely.
    pub drop: bool,
    /// The send is delivered a second time (with an independent latency).
    pub duplicate: bool,
    /// Extra delay added after normal latency/FIFO computation, without
    /// advancing the FIFO floor.
    pub extra_delay: Option<SimDuration>,
}

impl FaultDecision {
    pub(crate) const CLEAN: FaultDecision = FaultDecision {
        drop: false,
        duplicate: false,
        extra_delay: None,
    };
}

/// The mutable fault state of a [`World`](crate::world::World).
#[derive(Debug, Default)]
pub(crate) struct FaultPlane {
    default_fault: Option<LinkFault>,
    link_faults: BTreeMap<(ProcessId, ProcessId), LinkFault>,
    partitions: BTreeMap<String, Vec<BTreeSet<ProcessId>>>,
    exempt: BTreeSet<ProcessId>,
}

impl FaultPlane {
    pub(crate) fn set_default(&mut self, fault: Option<LinkFault>) {
        self.default_fault = fault.filter(|f| !f.is_none());
    }

    pub(crate) fn set_link(&mut self, from: ProcessId, to: ProcessId, fault: LinkFault) {
        if fault.is_none() {
            self.link_faults.remove(&(from, to));
        } else {
            self.link_faults.insert((from, to), fault);
        }
    }

    pub(crate) fn clear_link(&mut self, from: ProcessId, to: ProcessId) {
        self.link_faults.remove(&(from, to));
    }

    pub(crate) fn install_partition(&mut self, name: &str, groups: Vec<Vec<ProcessId>>) {
        self.partitions.insert(
            name.to_owned(),
            groups
                .into_iter()
                .map(|g| g.into_iter().collect())
                .collect(),
        );
    }

    pub(crate) fn heal_partition(&mut self, name: &str) {
        self.partitions.remove(name);
    }

    /// Clears link faults and partitions but keeps the fabric-wide default
    /// (background noise is controlled separately via
    /// [`FaultPlane::set_default`]).
    pub(crate) fn heal_all(&mut self) {
        self.link_faults.clear();
        self.partitions.clear();
    }

    pub(crate) fn mark_exempt(&mut self, pid: ProcessId) {
        self.exempt.insert(pid);
    }

    pub(crate) fn is_active(&self) -> bool {
        self.default_fault.is_some() || !self.link_faults.is_empty() || !self.partitions.is_empty()
    }

    fn partitioned(&self, from: ProcessId, to: ProcessId) -> bool {
        for groups in self.partitions.values() {
            let g_from = groups.iter().position(|g| g.contains(&from));
            let g_to = groups.iter().position(|g| g.contains(&to));
            if let (Some(a), Some(b)) = (g_from, g_to) {
                if a != b {
                    return true;
                }
            }
        }
        false
    }

    /// Decides the fate of one send. Consumes randomness only when a
    /// probabilistic fault is configured for the link.
    pub(crate) fn decide(
        &self,
        from: ProcessId,
        to: ProcessId,
        is_rdma: bool,
        rng: &mut ChaCha12Rng,
    ) -> FaultDecision {
        if !self.is_active() || self.exempt.contains(&from) || self.exempt.contains(&to) {
            return FaultDecision::CLEAN;
        }
        if self.partitioned(from, to) {
            return FaultDecision {
                drop: true,
                duplicate: false,
                extra_delay: None,
            };
        }
        let fault = self
            .link_faults
            .get(&(from, to))
            .or(self.default_fault.as_ref());
        let Some(fault) = fault else {
            return FaultDecision::CLEAN;
        };
        if !fault.scope.applies(is_rdma) {
            return FaultDecision::CLEAN;
        }
        let roll = |rng: &mut ChaCha12Rng, p: f64| -> bool {
            if p >= 1.0 {
                true
            } else if p <= 0.0 {
                false
            } else {
                rng.gen_range(0.0..1.0) < p
            }
        };
        if roll(rng, fault.drop) {
            return FaultDecision {
                drop: true,
                duplicate: false,
                extra_delay: None,
            };
        }
        let duplicate = roll(rng, fault.duplicate);
        let extra_delay = if roll(rng, fault.delay) {
            let (lo, hi) = fault.delay_micros;
            let micros = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            Some(SimDuration::from_micros(micros))
        } else {
            None
        };
        FaultDecision {
            drop: false,
            duplicate,
            extra_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::new(raw)
    }

    #[test]
    fn inactive_plane_is_clean_and_consumes_no_randomness() {
        let plane = FaultPlane::default();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let before: u64 = rng.gen_range(0..u64::MAX);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert_eq!(
            plane.decide(pid(0), pid(1), false, &mut rng),
            FaultDecision::CLEAN
        );
        let after: u64 = rng.gen_range(0..u64::MAX);
        assert_eq!(before, after, "clean decisions must not consume the rng");
    }

    #[test]
    fn full_cut_drops_one_direction_only() {
        let mut plane = FaultPlane::default();
        plane.set_link(pid(0), pid(1), LinkFault::cut(FaultScope::All));
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        assert!(plane.decide(pid(0), pid(1), false, &mut rng).drop);
        assert!(!plane.decide(pid(1), pid(0), false, &mut rng).drop);
    }

    #[test]
    fn scope_restricts_the_transport() {
        let mut plane = FaultPlane::default();
        plane.set_link(pid(0), pid(1), LinkFault::cut(FaultScope::MessagesOnly));
        plane.set_link(
            pid(2),
            pid(3),
            LinkFault::delay_all(500, FaultScope::RdmaOnly),
        );
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert!(plane.decide(pid(0), pid(1), false, &mut rng).drop);
        assert!(!plane.decide(pid(0), pid(1), true, &mut rng).drop);
        assert_eq!(
            plane.decide(pid(2), pid(3), false, &mut rng).extra_delay,
            None
        );
        assert_eq!(
            plane.decide(pid(2), pid(3), true, &mut rng).extra_delay,
            Some(SimDuration::from_micros(500))
        );
    }

    #[test]
    fn partitions_block_cross_group_traffic_until_healed() {
        let mut plane = FaultPlane::default();
        plane.install_partition("split", vec![vec![pid(0), pid(1)], vec![pid(2)]]);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        assert!(plane.decide(pid(0), pid(2), false, &mut rng).drop);
        assert!(plane.decide(pid(2), pid(1), true, &mut rng).drop);
        assert!(!plane.decide(pid(0), pid(1), false, &mut rng).drop);
        // A process outside every group is unaffected.
        assert!(!plane.decide(pid(0), pid(9), false, &mut rng).drop);
        plane.heal_partition("split");
        assert!(!plane.decide(pid(0), pid(2), false, &mut rng).drop);
    }

    #[test]
    fn exempt_processes_never_see_faults() {
        let mut plane = FaultPlane::default();
        plane.set_default(Some(LinkFault::cut(FaultScope::All)));
        plane.install_partition("p", vec![vec![pid(0)], vec![pid(7)]]);
        plane.mark_exempt(pid(7));
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        assert!(!plane.decide(pid(0), pid(7), false, &mut rng).drop);
        assert!(!plane.decide(pid(7), pid(0), false, &mut rng).drop);
        assert!(plane.decide(pid(0), pid(1), false, &mut rng).drop);
    }

    #[test]
    fn heal_all_keeps_the_default_noise() {
        let mut plane = FaultPlane::default();
        plane.set_default(Some(LinkFault::noise(1.0, 0.0, 0.0, 0)));
        plane.set_link(pid(0), pid(1), LinkFault::delay_all(9, FaultScope::All));
        plane.install_partition("p", vec![vec![pid(0)], vec![pid(1)]]);
        plane.heal_all();
        assert!(plane.is_active(), "default noise survives heal_all");
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        assert!(plane.decide(pid(0), pid(1), false, &mut rng).drop);
        plane.set_default(None);
        assert!(!plane.is_active());
    }

    #[test]
    fn probabilities_are_seed_deterministic() {
        let mut plane = FaultPlane::default();
        plane.set_default(Some(LinkFault::noise(0.3, 0.3, 0.3, 100)));
        let run = |seed: u64| {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            (0..64)
                .map(|i| plane.decide(pid(i % 4), pid((i + 1) % 4), i % 2 == 0, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        let decisions = run(7);
        assert!(decisions.iter().any(|d| d.drop));
        assert!(decisions.iter().any(|d| d.duplicate));
        assert!(decisions.iter().any(|d| d.extra_delay.is_some()));
    }
}
