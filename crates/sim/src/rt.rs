//! Threaded execution backend: one OS thread per process, channels as links.
//!
//! The deterministic simulator ([`World::run`](crate::world::World::run))
//! executes every actor on one thread under a virtual clock. This module
//! provides the second execution engine for the *same* world: each live
//! process becomes a real OS thread, each link becomes a bounded MPSC
//! channel, timers fire on the monotonic wall clock (`recv_timeout` against
//! [`std::time::Instant`] deadlines), and `ctx.now()` advances with real
//! elapsed time. Because a [`Context`] only *buffers*
//! effects (they are applied after the handler returns), a thread never holds
//! more than its own RDMA-inbox lock while actor code runs, which keeps the
//! backend deadlock-free by construction.
//!
//! A threaded run is a bracketed excursion: [`World::run_threaded`] moves the
//! actors, the pending event queue and the RDMA fabric out of the world,
//! executes in real time, then moves everything back — surviving timers and
//! undrained messages are re-queued, per-thread metrics are merged, and the
//! virtual clock is advanced by the real elapsed microseconds. Everything a
//! harness does *between* runs (submit, crash, restart, introspection)
//! therefore works identically on both backends, and a single cluster can
//! even alternate engines between runs.
//!
//! Fidelity notes, in decreasing order of importance:
//!
//! * **Decisions, not schedules.** A threaded run preserves the protocol
//!   contract (reliable per-link FIFO delivery, timer/incarnation semantics,
//!   RDMA open/close/ack/flush) but not the simulator's deterministic event
//!   order. Same-seed reproducibility is a simulator feature; the threaded
//!   backend exists to measure wall-clock behaviour and to let real
//!   concurrency attack ordering assumptions the simulator cannot.
//! * **Links are bounded channels.** Each process owns one bounded channel
//!   (`CHANNEL_CAPACITY` events); per-producer FIFO order of
//!   [`std::sync::mpsc`] gives per-link FIFO. A full channel never blocks a
//!   worker (which would risk distributed deadlock at shutdown): the sender
//!   buffers the event locally and retries, which preserves the reliable-link
//!   abstraction the protocols assume.
//! * **Every blocking receive is time-bounded.** Workers wait in
//!   `recv_timeout` with a capped poll interval, and the driver bounds whole
//!   runs with [`QUIESCENCE_TIMEOUT`], so a deadlocked or livelocked run
//!   fails fast (the run returns with work still pending and the suite's
//!   assertions fail) instead of hanging a test job.
//! * **Sim-only features.** Fault injection, latency models, transport
//!   tracing and `max_steps` apply only to the simulator; the threaded
//!   backend models a reliable LAN where real scheduling provides the
//!   nondeterminism. A `schedule_crash` still pending when a threaded run
//!   starts is applied at the start of the run rather than mid-run.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ratc_types::ProcessId;

use crate::actor::Effect;
use crate::actor::{dispatch, Actor, Context, TimerId, TimerTag, Upcall};
use crate::event::{EventKind, QueuedEvent};
use crate::metrics::Metrics;
use crate::rdma::{RdmaFabric, RdmaInbox, RdmaToken};
use crate::time::{SimDuration, SimTime};
use crate::trace::label_of;
use crate::world::World;

/// Which engine executes the actors of a world (or of a cluster built on
/// one).
///
/// * [`ExecutionMode::Sim`] — the deterministic discrete-event simulator:
///   single-threaded, virtual time, seeded randomness, fault injection and
///   transport tracing. Identical seeds give bit-identical runs, which is
///   what every chaos soak, shrunk schedule and Figure 4a hunt relies on.
/// * [`ExecutionMode::Threads`] — the threaded runtime in this module: one
///   OS thread per process, bounded channels as links, timers and latencies
///   on the monotonic wall clock. Runs are *not* reproducible event-by-event
///   (real scheduling decides interleavings) but externalise the same
///   protocol-level semantics, and are the only way to measure real
///   committed-tx/s (`exp_wallclock`).
///
/// The trade-off in one line: `Sim` answers "is it correct on this exact
/// schedule, again and again", `Threads` answers "how fast is it, and does
/// it survive schedules nobody picked".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// Deterministic single-threaded simulation under a virtual clock.
    #[default]
    Sim,
    /// One OS thread per process, real time, bounded channels.
    Threads,
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::Sim => write!(f, "sim"),
            ExecutionMode::Threads => write!(f, "threads"),
        }
    }
}

/// Hard wall-clock bound on a single threaded run. A run that has not
/// drained its in-flight work by then is stopped and returns with events
/// still queued, so a deadlocked protocol fails a suite quickly instead of
/// hanging it.
pub const QUIESCENCE_TIMEOUT: Duration = Duration::from_secs(30);

/// Capacity of each process's event channel. Senders never block on a full
/// channel (see the module docs); the bound exists to keep memory use
/// proportional to genuine in-flight traffic.
const CHANNEL_CAPACITY: usize = 8192;

/// Upper bound on how long a worker sleeps in `recv_timeout` when it has
/// nothing to do: the resolution at which it notices the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// Retry interval for events buffered because the target channel was full.
const OVERFLOW_RETRY: Duration = Duration::from_millis(1);

/// Wall-clock bound on the shutdown drain phase.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Size of the timer-id / RDMA-token space carved out per worker per run, so
/// threads can allocate identifiers without synchronising.
const ID_STRIPE: u64 = 1 << 24;

/// An event travelling through a process's channel.
enum RtEvent<M> {
    /// A network message (the channel itself is the link; per-producer FIFO
    /// order of `mpsc` gives per-link FIFO).
    Deliver { from: ProcessId, msg: M, hops: u32 },
    /// An RDMA write by *this* process landed in `target`'s memory.
    RdmaAck {
        target: ProcessId,
        token: RdmaToken,
        hops: u32,
    },
    /// This process's poller should deliver inbox entry `index`.
    RdmaDeliver { index: usize, hops: u32 },
    /// Shutdown sentinel: wake up and enter the drain phase.
    Stop,
}

/// A pending timer on a worker's local heap, ordered by deadline.
struct RtTimer {
    deadline: Instant,
    id: TimerId,
    tag: TimerTag,
}

impl PartialEq for RtTimer {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.id == other.id
    }
}
impl Eq for RtTimer {}
impl PartialOrd for RtTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RtTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.id).cmp(&(other.deadline, other.id))
    }
}

/// State shared by the driver and every worker for the duration of a run.
///
/// Memory-ordering protocol (one happens-before edge per atomic):
///
/// * [`Shared::pending`] — `AcqRel` RMWs; the increment (Release half)
///   happens-before the driver's `Acquire` load in the quiescence loop, so
///   when the driver reads 0 every enqueue that preceded the matching
///   decrement is visible and the run really is quiescent. The increment
///   is issued *before* the `try_send`/timer-arm it covers so the counter
///   over-approximates in-flight work, never under-approximates it.
/// * [`Shared::stopping`] — driver `Release` store, worker `Acquire` loads:
///   everything the driver did before requesting the stop (including the
///   quiescence decision) happens-before a worker observing `true`.
/// * [`Shared::retired`] — `AcqRel` `fetch_add` pledge / `Acquire` load:
///   a worker's pledge (and every send it issued before pledging)
///   happens-before another worker observing the full retirement count,
///   so the drain phase cannot terminate while a pledged send is invisible.
/// * [`Shared::rejected`] — `Relaxed` `fetch_add` is sufficient: the
///   counter guards no other memory, atomic RMWs never lose increments,
///   and the final read happens after `std::thread::scope` joins every
///   worker, which already orders all their increments before it.
struct Shared<M> {
    /// Processes that have a thread (i.e. were not crashed at run start).
    live: BTreeSet<ProcessId>,
    /// In-flight work: queued channel events plus armed timers plus the
    /// event currently being handled. Zero means quiescent.
    /// Increment-before-send / decrement-after-handle, `AcqRel`.
    pending: AtomicI64,
    /// Set by the driver to end the run. Store `Release`, load `Acquire`.
    stopping: AtomicBool,
    /// Workers that have finished their main loop and pledged to send no
    /// further events; the drain phase completes when all have. `AcqRel`
    /// pledge, `Acquire` poll.
    retired: AtomicUsize,
    /// RDMA permission sets (`allowed[owner]` = peers that may write).
    perms: Mutex<BTreeMap<ProcessId, BTreeSet<ProcessId>>>,
    /// RDMA inboxes, one lock per owner. A worker locks its own inbox only
    /// while a handler runs; writers lock `perms` then the target inbox
    /// (a single global lock order, so no deadlock).
    inboxes: BTreeMap<ProcessId, Mutex<RdmaInbox<M>>>,
    /// RDMA writes rejected because the connection was closed. `Relaxed`
    /// increments; completeness comes from the scope join (see above), not
    /// from this atomic's ordering.
    rejected: AtomicU64,
    /// Wall-clock origin of the run; `now()` is `start_now` + elapsed.
    epoch: Instant,
    /// Virtual time at which the run started.
    start_now: SimTime,
}

impl<M> Shared<M> {
    /// The current virtual time: run start plus real elapsed microseconds
    /// (monotonic, from [`Instant`]), so `DecisionLatency::micros` measured
    /// on this backend is genuine wall-clock latency.
    fn now(&self) -> SimTime {
        self.start_now + SimDuration::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Lands an RDMA write in `to`'s memory if `from` may write there.
    /// Returns the inbox index, or `None` if the write was rejected (the
    /// rejection counter is bumped here; the caller records metrics).
    fn rdma_arrive(&self, from: ProcessId, to: ProcessId, msg: M) -> Option<usize> {
        let perms = self.perms.lock().expect("perms lock");
        if !perms.get(&to).is_some_and(|set| set.contains(&from)) {
            drop(perms);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inbox = self
            .inboxes
            .get(&to)
            .expect("inbox")
            .lock()
            .expect("inbox lock");
        Some(inbox.push(from, msg))
    }
}

/// What a worker hands back when its thread joins.
struct WorkerDone<M> {
    pid: ProcessId,
    actor: Box<dyn Actor<M>>,
    metrics: Metrics,
    /// Events drained from this process's channel after the stop.
    leftovers: Vec<RtEvent<M>>,
    /// Events this worker could not send (target channel full at stop).
    unsent: Vec<(ProcessId, RtEvent<M>)>,
    /// Timers still armed at stop, with their original incarnation.
    timers: Vec<(Instant, TimerId, TimerTag)>,
    /// Cancellations that found no local timer (already fired elsewhere).
    cancels: Vec<TimerId>,
    incarnation: u64,
    events_processed: u64,
}

/// One process-thread: an actor, its channel, its timer heap.
struct Worker<'s, M> {
    pid: ProcessId,
    actor: Box<dyn Actor<M>>,
    shared: &'s Shared<M>,
    senders: BTreeMap<ProcessId, SyncSender<RtEvent<M>>>,
    rx: Receiver<RtEvent<M>>,
    timers: BinaryHeap<Reverse<RtTimer>>,
    overflow: Vec<(ProcessId, RtEvent<M>)>,
    metrics: Metrics,
    next_timer_id: u64,
    next_rdma_token: u64,
    incarnation: u64,
    events_processed: u64,
    cancels: Vec<TimerId>,
}

impl<'s, M: Clone + fmt::Debug + Send + 'static> Worker<'s, M> {
    fn run(mut self) -> WorkerDone<M> {
        loop {
            if self.shared.stopping.load(Ordering::Acquire) {
                break;
            }
            self.flush_overflow();
            self.fire_due_timers();
            let mut timeout = IDLE_POLL;
            if let Some(Reverse(timer)) = self.timers.peek() {
                timeout = timeout.min(timer.deadline.saturating_duration_since(Instant::now()));
            }
            if !self.overflow.is_empty() {
                timeout = timeout.min(OVERFLOW_RETRY);
            }
            match self.rx.recv_timeout(timeout) {
                Ok(RtEvent::Stop) => break,
                Ok(event) => self.handle(event),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.drain()
    }

    /// Processes one channel event: upcall, effects, accounting.
    fn handle(&mut self, event: RtEvent<M>) {
        match event {
            RtEvent::Deliver { from, msg, hops } => {
                self.metrics.on_receive(self.pid);
                if self.metrics.obs_enabled() {
                    let label = label_of(&msg);
                    self.metrics.on_msg_delivered(&label);
                }
                self.invoke(Upcall::Message { from, msg }, hops);
            }
            RtEvent::RdmaAck {
                target,
                token,
                hops,
            } => {
                self.metrics.on_rdma_ack(self.pid);
                self.invoke(Upcall::RdmaAck { token, to: target }, hops);
            }
            RtEvent::RdmaDeliver { index, hops } => {
                let entry = {
                    let mut inbox = self
                        .shared
                        .inboxes
                        .get(&self.pid)
                        .expect("own inbox")
                        .lock()
                        .expect("inbox lock");
                    inbox.take_for_delivery(index)
                };
                if let Some((from, msg)) = entry {
                    self.metrics.on_rdma_deliver(self.pid);
                    if self.metrics.obs_enabled() {
                        let label = label_of(&msg);
                        self.metrics.on_msg_delivered(&label);
                    }
                    self.invoke(Upcall::RdmaDeliver { from, msg }, hops);
                }
            }
            RtEvent::Stop => unreachable!("Stop is consumed by the main loop"),
        }
        self.shared.pending.fetch_sub(1, Ordering::AcqRel);
        self.events_processed += 1;
    }

    fn fire_due_timers(&mut self) {
        loop {
            let due = matches!(
                self.timers.peek(),
                Some(Reverse(timer)) if timer.deadline <= Instant::now()
            );
            if !due || self.shared.stopping.load(Ordering::Acquire) {
                break;
            }
            let Reverse(timer) = self.timers.pop().expect("peeked");
            self.invoke(Upcall::Timer { tag: timer.tag }, 0);
            self.shared.pending.fetch_sub(1, Ordering::AcqRel);
            self.events_processed += 1;
        }
    }

    /// Drives the actor through the shared [`dispatch`] seam, holding only
    /// the worker's own inbox lock for the duration of the handler, then
    /// applies the buffered effects.
    fn invoke(&mut self, upcall: Upcall<M>, hops: u32) {
        let now = self.shared.now();
        let effects = {
            let mut inbox = self
                .shared
                .inboxes
                .get(&self.pid)
                .expect("own inbox")
                .lock()
                .expect("inbox lock");
            let mut ctx = Context {
                self_id: self.pid,
                now,
                hops,
                effects: Vec::new(),
                metrics: &mut self.metrics,
                inbox: &mut inbox,
                next_timer_id: &mut self.next_timer_id,
                next_rdma_token: &mut self.next_rdma_token,
            };
            dispatch(self.actor.as_mut(), upcall, &mut ctx);
            std::mem::take(&mut ctx.effects)
        };
        self.apply_effects(effects, hops);
    }

    fn apply_effects(&mut self, effects: Vec<Effect<M>>, hops: u32) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    if self.metrics.obs_enabled() {
                        let label = label_of(&msg);
                        self.metrics.on_msg_sent(&label);
                    }
                    self.enqueue(
                        to,
                        RtEvent::Deliver {
                            from: self.pid,
                            msg,
                            hops: hops + 1,
                        },
                    )
                }
                Effect::RdmaSend { to, msg, token } => {
                    if self.metrics.obs_enabled() {
                        let label = label_of(&msg);
                        self.metrics.on_msg_sent(&label);
                    }
                    // Mirrors the simulator's hop accounting: the write
                    // arrives with `hops + 1`; the delivery keeps the
                    // arrival count and the acknowledgement adds one more.
                    if !self.shared.live.contains(&to) {
                        continue; // crashed target: write lost, no ack
                    }
                    match self.shared.rdma_arrive(self.pid, to, msg) {
                        Some(index) => {
                            self.enqueue(
                                to,
                                RtEvent::RdmaDeliver {
                                    index,
                                    hops: hops + 1,
                                },
                            );
                            self.enqueue(
                                self.pid,
                                RtEvent::RdmaAck {
                                    target: to,
                                    token,
                                    hops: hops + 2,
                                },
                            );
                        }
                        None => self.metrics.rdma_rejected += 1,
                    }
                }
                Effect::RdmaOpen { peer } => {
                    self.shared
                        .perms
                        .lock()
                        .expect("perms lock")
                        .entry(self.pid)
                        .or_default()
                        .insert(peer);
                }
                Effect::RdmaClose { peer } => {
                    if let Some(set) = self
                        .shared
                        .perms
                        .lock()
                        .expect("perms lock")
                        .get_mut(&self.pid)
                    {
                        set.remove(&peer);
                    }
                }
                Effect::RdmaCloseAll => {
                    self.shared
                        .perms
                        .lock()
                        .expect("perms lock")
                        .remove(&self.pid);
                }
                Effect::SetTimer { delay, tag, id } => {
                    self.timers.push(Reverse(RtTimer {
                        deadline: Instant::now() + Duration::from_micros(delay.as_micros()),
                        id,
                        tag,
                    }));
                    self.shared.pending.fetch_add(1, Ordering::AcqRel);
                }
                Effect::CancelTimer { id } => self.cancel_timer(id),
            }
        }
    }

    /// Counts the event as pending, then hands it to the target channel.
    /// A full channel buffers the event locally instead of blocking (see
    /// the module docs for why blocking could deadlock the shutdown drain).
    fn enqueue(&mut self, to: ProcessId, event: RtEvent<M>) {
        if !self.shared.live.contains(&to) {
            return; // crashed or unknown target: dropped, like the simulator
        }
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        match self.senders.get(&to).expect("live sender").try_send(event) {
            Ok(()) => {}
            Err(TrySendError::Full(event)) => self.overflow.push((to, event)),
            Err(TrySendError::Disconnected(_)) => {
                self.shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    fn flush_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let buffered = std::mem::take(&mut self.overflow);
        for (to, event) in buffered {
            match self.senders.get(&to).expect("live sender").try_send(event) {
                Ok(()) => {}
                Err(TrySendError::Full(event)) => self.overflow.push((to, event)),
                Err(TrySendError::Disconnected(_)) => {
                    self.shared.pending.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }

    /// Cancels a timer on the local heap; a miss (already fired, or armed
    /// by a previous run) is recorded for the world's cancellation set.
    fn cancel_timer(&mut self, id: TimerId) {
        let before = self.timers.len();
        let kept: BinaryHeap<Reverse<RtTimer>> = self
            .timers
            .drain()
            .filter(|Reverse(timer)| timer.id != id)
            .collect();
        self.timers = kept;
        if self.timers.len() < before {
            self.shared.pending.fetch_sub(1, Ordering::AcqRel);
        } else {
            self.cancels.push(id);
        }
    }

    /// Shutdown: pledge to send nothing further, then drain the channel
    /// until every worker has made the same pledge and the channel is empty.
    /// Bounded by [`DRAIN_TIMEOUT`] so one stuck thread cannot hang the run.
    fn drain(self) -> WorkerDone<M> {
        self.shared.retired.fetch_add(1, Ordering::AcqRel);
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        let mut leftovers = Vec::new();
        loop {
            while let Ok(event) = self.rx.try_recv() {
                if !matches!(event, RtEvent::Stop) {
                    leftovers.push(event);
                }
            }
            let all_retired = self.shared.retired.load(Ordering::Acquire) >= self.shared.live.len();
            if all_retired || Instant::now() >= deadline {
                while let Ok(event) = self.rx.try_recv() {
                    if !matches!(event, RtEvent::Stop) {
                        leftovers.push(event);
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        WorkerDone {
            pid: self.pid,
            actor: self.actor,
            metrics: self.metrics,
            leftovers,
            unsent: self.overflow,
            timers: self
                .timers
                .into_sorted_vec()
                .into_iter()
                .map(|Reverse(timer)| (timer.deadline, timer.id, timer.tag))
                .collect(),
            cancels: self.cancels,
            incarnation: self.incarnation,
            events_processed: self.events_processed,
        }
    }
}

/// Converts a channel event addressed to `pid` back into a world-queue
/// event, so undrained work survives into the next run (on either backend).
fn requeue<M>(pid: ProcessId, event: RtEvent<M>) -> Option<EventKind<M>> {
    match event {
        RtEvent::Deliver { from, msg, hops } => Some(EventKind::Deliver {
            from,
            to: pid,
            msg,
            hops,
        }),
        RtEvent::RdmaAck {
            target,
            token,
            hops,
        } => Some(EventKind::RdmaAck {
            sender: pid,
            target,
            token,
            hops,
        }),
        RtEvent::RdmaDeliver { index, hops } => Some(EventKind::RdmaDeliver {
            at: pid,
            index,
            hops,
        }),
        RtEvent::Stop => None,
    }
}

/// Runs `world` on the threaded backend until it quiesces (`until = None`)
/// or until virtual time reaches `until`, whichever comes first, bounded by
/// [`QUIESCENCE_TIMEOUT`]. Returns the number of events processed.
pub(crate) fn run_threaded<M>(world: &mut World<M>, until: Option<SimTime>) -> u64
where
    M: Clone + fmt::Debug + Send + 'static,
{
    let start_now = world.now;

    // -- extract: pull the pending queue out and split it ------------------
    let mut seeded: Vec<QueuedEvent<M>> = std::mem::take(&mut world.queue)
        .into_sorted_vec()
        .into_iter()
        .map(|Reverse(event)| event)
        .collect();
    seeded.reverse(); // `Reverse` sorts descending; restore (time, seq) order

    let mut channel_seeds: Vec<EventKind<M>> = Vec::new();
    let mut timer_seeds: BTreeMap<ProcessId, Vec<(SimDuration, TimerId, TimerTag)>> =
        BTreeMap::new();
    for QueuedEvent { time, kind, .. } in seeded {
        match kind {
            EventKind::Crash { at } => {
                // Mid-run crash schedules are a simulator feature; a crash
                // still pending when a threaded run starts takes effect at
                // the start of the run.
                world.crash(at);
            }
            EventKind::Timer {
                at,
                id,
                tag,
                incarnation,
            } => {
                if world.cancelled_timers.remove(&id)
                    || world.crashed.contains(&at)
                    || world.incarnations.get(&at).copied().unwrap_or(0) != incarnation
                {
                    continue;
                }
                let remaining = SimDuration::from_micros(
                    time.as_micros().saturating_sub(start_now.as_micros()),
                );
                timer_seeds
                    .entry(at)
                    .or_default()
                    .push((remaining, id, tag));
            }
            other => channel_seeds.push(other),
        }
    }

    let live: BTreeSet<ProcessId> = world
        .actors
        .keys()
        .filter(|pid| !world.crashed.contains(pid))
        .copied()
        .collect();
    if live.is_empty() {
        // Nothing can execute; put non-timer events back and advance time.
        for kind in channel_seeds {
            world.push_event(start_now, kind);
        }
        if let Some(until) = until {
            if world.now < until {
                world.now = until;
            }
        }
        return 0;
    }

    let obs_enabled = world.metrics.obs_enabled();
    let ctrl_capacity = world.metrics.ctrl_capacity();
    let (perms, mut inboxes, rejected_base) = std::mem::take(&mut world.rdma).into_parts();
    let base_timer_id = world.next_timer_id;
    let base_rdma_token = world.next_rdma_token;

    let mut senders: BTreeMap<ProcessId, SyncSender<RtEvent<M>>> = BTreeMap::new();
    let mut receivers: BTreeMap<ProcessId, Receiver<RtEvent<M>>> = BTreeMap::new();
    for pid in &live {
        let (tx, rx) = sync_channel(CHANNEL_CAPACITY);
        senders.insert(*pid, tx);
        receivers.insert(*pid, rx);
    }

    let shared = Shared {
        live: live.clone(),
        pending: AtomicI64::new(0),
        stopping: AtomicBool::new(false),
        retired: AtomicUsize::new(0),
        perms: Mutex::new(perms),
        inboxes: world
            .actors
            .keys()
            .map(|pid| (*pid, Mutex::new(inboxes.remove(pid).unwrap_or_default())))
            .collect(),
        rejected: AtomicU64::new(0),
        epoch: Instant::now(),
        start_now,
    };

    let mut dones: Vec<WorkerDone<M>> = Vec::with_capacity(live.len());
    let mut seed_rejected = 0u64;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(live.len());
        for (index, pid) in live.iter().copied().enumerate() {
            let actor = world
                .actors
                .get_mut(&pid)
                .and_then(Option::take)
                .expect("live actor present");
            let timers: BinaryHeap<Reverse<RtTimer>> = timer_seeds
                .remove(&pid)
                .unwrap_or_default()
                .into_iter()
                .map(|(remaining, id, tag)| {
                    shared.pending.fetch_add(1, Ordering::AcqRel);
                    Reverse(RtTimer {
                        deadline: shared.epoch + Duration::from_micros(remaining.as_micros()),
                        id,
                        tag,
                    })
                })
                .collect();
            let worker = Worker {
                pid,
                actor,
                shared: &shared,
                senders: senders.clone(),
                rx: receivers.remove(&pid).expect("receiver"),
                timers,
                overflow: Vec::new(),
                // Per-worker collectors inherit the observability switch so
                // milestone stamps recorded on worker threads survive the
                // post-run `absorb` into the world's collector, and the
                // control-plane buffer bound so a bounded run stays bounded
                // per worker too.
                metrics: {
                    let mut metrics = Metrics::with_obs(obs_enabled);
                    metrics.set_ctrl_capacity(ctrl_capacity);
                    metrics
                },
                next_timer_id: base_timer_id + (index as u64) * ID_STRIPE,
                next_rdma_token: base_rdma_token + (index as u64) * ID_STRIPE,
                incarnation: world.incarnations.get(&pid).copied().unwrap_or(0),
                events_processed: 0,
                cancels: Vec::new(),
            };
            handles.push(scope.spawn(move || worker.run()));
        }

        // -- seed: inject the pending events; threads are already draining --
        let seed = |to: ProcessId, event: RtEvent<M>| {
            if !shared.live.contains(&to) {
                return;
            }
            shared.pending.fetch_add(1, Ordering::AcqRel);
            if senders.get(&to).expect("live sender").send(event).is_err() {
                shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
        };
        for kind in channel_seeds {
            match kind {
                EventKind::Deliver {
                    from,
                    to,
                    msg,
                    hops,
                } => seed(to, RtEvent::Deliver { from, msg, hops }),
                EventKind::RdmaArrive {
                    from,
                    to,
                    msg,
                    hops,
                    token,
                } => {
                    if !shared.live.contains(&to) {
                        continue;
                    }
                    match shared.rdma_arrive(from, to, msg) {
                        Some(index) => {
                            seed(to, RtEvent::RdmaDeliver { index, hops });
                            seed(
                                from,
                                RtEvent::RdmaAck {
                                    target: to,
                                    token,
                                    hops: hops + 1,
                                },
                            );
                        }
                        None => seed_rejected += 1,
                    }
                }
                EventKind::RdmaAck {
                    sender,
                    target,
                    token,
                    hops,
                } => seed(
                    sender,
                    RtEvent::RdmaAck {
                        target,
                        token,
                        hops,
                    },
                ),
                EventKind::RdmaDeliver { at, index, hops } => {
                    seed(at, RtEvent::RdmaDeliver { index, hops })
                }
                EventKind::Timer { .. } | EventKind::Crash { .. } => {
                    unreachable!("partitioned out above")
                }
            }
        }

        // -- wait: quiescence, the virtual deadline, or the hard timeout ----
        let until_deadline = until.map(|until| {
            shared.epoch
                + Duration::from_micros(until.as_micros().saturating_sub(start_now.as_micros()))
        });
        let hard_deadline = shared.epoch + QUIESCENCE_TIMEOUT;
        loop {
            if shared.pending.load(Ordering::Acquire) <= 0 {
                break;
            }
            let now = Instant::now();
            if until_deadline.is_some_and(|deadline| now >= deadline) || now >= hard_deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }

        // -- stop: flag + sentinel (never blocks), then join ----------------
        shared.stopping.store(true, Ordering::Release);
        for pid in &live {
            let _ = senders.get(pid).expect("sender").try_send(RtEvent::Stop);
        }
        for handle in handles {
            dones.push(handle.join().expect("worker thread panicked"));
        }
    });

    // -- restore: clock, actors, metrics, fabric, surviving work ------------
    let elapsed = SimDuration::from_micros(shared.epoch.elapsed().as_micros() as u64);
    world.now = start_now + elapsed;
    if let Some(until) = until {
        if world.now < until {
            world.now = until;
        }
    }
    let end = Instant::now();
    let mut total_events = 0u64;
    for done in dones {
        total_events += done.events_processed;
        world.metrics.absorb(done.metrics);
        for event in done.leftovers {
            if let Some(kind) = requeue(done.pid, event) {
                world.push_event(world.now, kind);
            }
        }
        for (to, event) in done.unsent {
            if let Some(kind) = requeue(to, event) {
                world.push_event(world.now, kind);
            }
        }
        for (deadline, id, tag) in done.timers {
            let remaining = SimDuration::from_micros(
                deadline.saturating_duration_since(end).as_micros() as u64,
            );
            world.push_event(
                world.now + remaining,
                EventKind::Timer {
                    at: done.pid,
                    id,
                    tag,
                    incarnation: done.incarnation,
                },
            );
        }
        world.cancelled_timers.extend(done.cancels);
        if let Some(slot) = world.actors.get_mut(&done.pid) {
            *slot = Some(done.actor);
        }
    }
    world.steps += total_events;
    world.metrics.rdma_rejected += seed_rejected;

    let perms = shared.perms.into_inner().expect("perms lock");
    let inboxes: BTreeMap<ProcessId, RdmaInbox<M>> = shared
        .inboxes
        .into_iter()
        .map(|(pid, inbox)| (pid, inbox.into_inner().expect("inbox lock")))
        .collect();
    // `shared.rejected` already includes the seed-path rejections
    // (`rdma_arrive` bumps it before `seed_rejected` is incremented), so
    // only the pre-run base is added here. `seed_rejected` feeds
    // `world.metrics` above instead: seed rejections happen on the driver
    // thread and are in no worker's absorbed metrics.
    let rejected = rejected_base + shared.rejected.load(Ordering::Acquire);
    world.rdma = RdmaFabric::from_parts(perms, inboxes, rejected);
    world.next_timer_id = base_timer_id + (live.len() as u64) * ID_STRIPE;
    world.next_rdma_token = base_rdma_token + (live.len() as u64) * ID_STRIPE;
    total_events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::SimConfig;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
        Note(u64),
    }

    #[derive(Default)]
    struct Recorder {
        messages: Vec<(ProcessId, Msg)>,
        rdma_messages: Vec<(ProcessId, Msg)>,
        acks: Vec<RdmaToken>,
        timers: Vec<TimerTag>,
    }

    impl Actor<Msg> for Recorder {
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if msg == Msg::Ping {
                ctx.send(from, Msg::Pong);
            }
            self.messages.push((from, msg));
        }

        fn on_timer(&mut self, tag: TimerTag, _ctx: &mut Context<'_, Msg>) {
            self.timers.push(tag);
        }

        fn on_rdma_ack(&mut self, token: RdmaToken, _to: ProcessId, _ctx: &mut Context<'_, Msg>) {
            self.acks.push(token);
        }

        fn on_rdma_deliver(&mut self, from: ProcessId, msg: Msg, _ctx: &mut Context<'_, Msg>) {
            self.rdma_messages.push((from, msg));
        }
    }

    #[test]
    fn execution_mode_default_and_display() {
        assert_eq!(ExecutionMode::default(), ExecutionMode::Sim);
        assert_eq!(ExecutionMode::Sim.to_string(), "sim");
        assert_eq!(ExecutionMode::Threads.to_string(), "threads");
    }

    #[test]
    fn threaded_ping_pong_round_trip() {
        let mut w = World::new(SimConfig::default());
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.send_from(a, b, Msg::Ping);
        let events = w.run_threaded();
        assert!(events >= 2, "ping and pong both executed, got {events}");
        assert_eq!(
            w.actor::<Recorder>(b).expect("b").messages,
            vec![(a, Msg::Ping)]
        );
        assert_eq!(
            w.actor::<Recorder>(a).expect("a").messages,
            vec![(b, Msg::Pong)]
        );
        assert_eq!(w.metrics().received(b), 1);
        assert_eq!(w.metrics().sent(b), 1);
        assert_eq!(w.metrics().total_delivered, 2);
    }

    #[test]
    fn threaded_fifo_order_is_preserved_per_link() {
        let mut w = World::new(SimConfig::default());
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        for i in 0..200 {
            w.send_from(a, b, Msg::Note(i));
        }
        w.run_threaded();
        let notes: Vec<u64> = w
            .actor::<Recorder>(b)
            .expect("b")
            .messages
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::Note(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(notes, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_timers_fire_and_clock_advances() {
        struct TimerOnStart;
        impl Actor<Msg> for TimerOnStart {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_micros(500), 7);
            }
            fn on_message(&mut self, _f: ProcessId, _m: Msg, _c: &mut Context<'_, Msg>) {}
            fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, Msg>) {
                ctx.add_counter("fired", tag);
            }
        }
        let mut w = World::new(SimConfig::default());
        let before = w.now();
        w.add_actor(TimerOnStart);
        w.run_threaded();
        assert_eq!(w.metrics().counter("fired"), 7);
        assert!(w.now() > before, "wall-clock time advanced the sim clock");
    }

    #[test]
    fn threaded_timer_cancel_prevents_fire() {
        struct CancelOnStart;
        impl Actor<Msg> for CancelOnStart {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                let id = ctx.set_timer(SimDuration::from_millis(200), 1);
                ctx.set_timer(SimDuration::from_micros(10), 2);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _f: ProcessId, _m: Msg, _c: &mut Context<'_, Msg>) {}
            fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, Msg>) {
                ctx.add_counter(&format!("fired{tag}"), 1);
            }
        }
        let mut w = World::new(SimConfig::default());
        w.add_actor(CancelOnStart);
        let start = Instant::now();
        w.run_threaded();
        assert_eq!(w.metrics().counter("fired1"), 0, "cancelled timer");
        assert_eq!(w.metrics().counter("fired2"), 1);
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "cancelling released the pending count; the run did not wait 200ms"
        );
    }

    #[test]
    fn threaded_rdma_write_ack_and_delivery() {
        struct RdmaSender {
            to: ProcessId,
        }
        impl Actor<Msg> for RdmaSender {
            fn on_message(&mut self, _f: ProcessId, _m: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.rdma_send(self.to, Msg::Note(99));
            }
        }
        let mut w = World::new(SimConfig::default());
        let receiver = w.add_actor(Recorder::default());
        let driver = w.add_actor(RdmaSender { to: receiver });
        w.rdma_open(receiver, driver);
        w.send_external(driver, Msg::Ping);
        w.run_threaded();
        assert_eq!(
            w.actor::<Recorder>(receiver).expect("r").rdma_messages,
            vec![(driver, Msg::Note(99))]
        );
        assert_eq!(w.metrics().process(driver).rdma_acks, 1);
        assert_eq!(w.rdma_rejected(), 0);
    }

    #[test]
    fn threaded_rdma_write_without_permission_is_rejected() {
        struct RdmaSender {
            to: ProcessId,
        }
        impl Actor<Msg> for RdmaSender {
            fn on_message(&mut self, _f: ProcessId, _m: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.rdma_send(self.to, Msg::Note(1));
            }
        }
        let mut w = World::new(SimConfig::default());
        let receiver = w.add_actor(Recorder::default());
        let driver = w.add_actor(RdmaSender { to: receiver });
        // No rdma_open: the write must be rejected and never acknowledged.
        w.send_external(driver, Msg::Ping);
        w.run_threaded();
        assert_eq!(w.rdma_rejected(), 1);
        assert_eq!(w.metrics().rdma_rejected, 1);
        assert!(w
            .actor::<Recorder>(receiver)
            .expect("r")
            .rdma_messages
            .is_empty());
        assert_eq!(w.metrics().process(driver).rdma_acks, 0);
    }

    /// A write rejected on the *seed* path (queued in the world before the
    /// threaded run starts) must count exactly once in the fabric counter
    /// and once in metrics — the driver bumps `Shared::rejected` inside
    /// `rdma_arrive` and separately tallies `seed_rejected`, and these were
    /// once summed together, double-counting every seed rejection.
    #[test]
    fn threaded_seed_path_rejection_counts_once() {
        let mut w = World::new(SimConfig::default());
        let receiver = w.add_actor(Recorder::default());
        let sender = w.add_actor(Recorder::default());
        // No rdma_open: the queued write must be rejected during seeding.
        w.rdma_send_from(sender, receiver, Msg::Note(7));
        w.run_threaded();
        assert_eq!(w.rdma_rejected(), 1, "fabric counts the rejection once");
        assert_eq!(w.metrics().rdma_rejected, 1, "metrics count it once");
        assert!(w
            .actor::<Recorder>(receiver)
            .expect("r")
            .rdma_messages
            .is_empty());
    }

    #[test]
    fn threaded_run_skips_crashed_processes() {
        let mut w = World::new(SimConfig::default());
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.crash(b);
        w.send_from(a, b, Msg::Ping);
        w.run_threaded();
        assert!(w.actor::<Recorder>(b).expect("b").messages.is_empty());
        // A later sim run on the same world still works (backends alternate).
        w.restart(b);
        w.send_from(a, b, Msg::Ping);
        w.run();
        assert_eq!(w.actor::<Recorder>(b).expect("b").messages.len(), 1);
    }

    #[test]
    fn threaded_then_sim_interleaving_preserves_pending_events() {
        let mut w = World::new(SimConfig::default());
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        // First run on threads, then inject more and run the simulator.
        w.send_from(a, b, Msg::Note(1));
        w.run_threaded();
        w.send_from(a, b, Msg::Note(2));
        w.run();
        let notes: Vec<u64> = w
            .actor::<Recorder>(b)
            .expect("b")
            .messages
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::Note(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(notes, vec![1, 2]);
    }

    #[test]
    fn threaded_run_until_returns_by_deadline_with_idle_timer() {
        struct SlowTimer;
        impl Actor<Msg> for SlowTimer {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                // Far beyond the run deadline; must survive into the queue.
                ctx.set_timer(SimDuration::from_millis(10_000), 1);
            }
            fn on_message(&mut self, _f: ProcessId, _m: Msg, _c: &mut Context<'_, Msg>) {}
        }
        let mut w = World::new(SimConfig::default());
        w.add_actor(SlowTimer);
        let start = Instant::now();
        let until = w.now() + SimDuration::from_millis(20);
        w.run_threaded_until(until);
        assert!(start.elapsed() < Duration::from_secs(5), "returned early");
        assert!(w.now() >= until);
    }
}
