//! Deterministic discrete-event simulation substrate for the RATC protocols.
//!
//! The paper's protocols are defined in an asynchronous message-passing model
//! with reliable FIFO channels and crash-stop failures (§3), extended in §5
//! with an RDMA-style communication primitive. This crate implements that
//! model as a deterministic, single-threaded discrete-event simulator:
//!
//! * [`World`] — the event loop: a priority queue of timestamped events, a set
//!   of [`Actor`]s addressed by `ProcessId`, per-channel FIFO delivery,
//!   crash injection and deterministic seeded randomness.
//! * [`Actor`] / [`Context`] — the programming model for protocol processes:
//!   handlers for message delivery, timers, RDMA delivery and RDMA
//!   acknowledgements, and a context for sending messages, setting timers and
//!   manipulating RDMA connections.
//! * [`latency`] — pluggable message latency models.
//! * [`faults`] — per-link fault injection: seeded message drops, duplicates
//!   and delays (which double as reordering), asymmetric cuts and named
//!   partitions, plus crash–restart support in the world (`World::restart`).
//! * [`rdma`] — the simulated RDMA primitive of §5: `send-rdma`, `ack-rdma`,
//!   `deliver-rdma`, `open`, `close` and `flush`, with the exact semantics the
//!   correctness argument relies on (an acknowledgement means the message is
//!   in the receiver's memory and will be delivered even if the sender
//!   crashes; after `close` no further writes from that peer can land).
//! * [`metrics`] / [`trace`] — measurement: per-process message counts,
//!   named counters, message-delay (hop) accounting and an optional full
//!   message trace used by the specification checkers and the experiment
//!   harnesses.
//! * Commit-path observability — [`Context`] exposes
//!   [`obs_milestone`](actor::Context::obs_milestone) /
//!   [`obs_gauge`](actor::Context::obs_gauge) hooks (backed by the
//!   [`ratc_obs`] timeline model, re-exported here) that stamp transaction
//!   lifecycle milestones identically under both execution engines. Off by
//!   default; enabling it never changes a seeded schedule.
//!
//! Determinism: given the same seed and the same sequence of API calls, a
//! simulation produces exactly the same event order, which makes every
//! experiment and every property-based test reproducible.
//!
//! # Example
//!
//! ```
//! use ratc_sim::prelude::*;
//! use ratc_types::ProcessId;
//!
//! #[derive(Clone, Debug)]
//! enum Ping { Ping, Pong }
//!
//! struct Node { got_pong: bool }
//!
//! impl Actor<Ping> for Node {
//!     fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Context<'_, Ping>) {
//!         match msg {
//!             Ping::Ping => ctx.send(from, Ping::Pong),
//!             Ping::Pong => self.got_pong = true,
//!         }
//!     }
//! }
//!
//! let mut world = World::new(SimConfig::default());
//! let a = world.add_actor(Node { got_pong: false });
//! let b = world.add_actor(Node { got_pong: false });
//! world.send_from(a, b, Ping::Ping);  // a pings b; b answers with Pong.
//! world.run();
//! assert!(world.actor::<Node>(a).expect("actor a").got_pong);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod actor;
pub mod backoff;
pub mod event;
pub mod faults;
pub mod latency;
pub mod metrics;
pub mod rdma;
pub mod rt;
pub mod time;
pub mod trace;
pub mod world;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::actor::{Actor, Context, TimerTag};
    pub use crate::faults::{FaultScope, LinkFault};
    pub use crate::latency::LatencyModel;
    pub use crate::metrics::Metrics;
    pub use crate::rdma::RdmaSendOutcome;
    pub use crate::rt::ExecutionMode;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{TraceEvent, TraceKind};
    pub use crate::world::{SimConfig, World};
}

pub use actor::{Actor, Context, TimerTag};
pub use backoff::{BackoffPolicy, BackoffState};
// Re-exported so protocol crates can stamp milestones through their existing
// `ratc-sim` dependency without depending on `ratc-obs` themselves.
pub use faults::{FaultScope, LinkFault};
pub use latency::LatencyModel;
pub use metrics::Metrics;
pub use ratc_obs::{
    blackouts, decided_times_per_shard, fold_timelines, Blackout, CtrlEvent, CtrlMilestone,
    LatencyUnit, Phase, PhaseBreakdown, TxMilestone, TxObsEvent, TxTimeline,
};
pub use rdma::RdmaSendOutcome;
pub use rt::ExecutionMode;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind};
pub use world::{SimConfig, World};
