//! Simulated RDMA primitive (§5 of the paper).
//!
//! The paper's RDMA-based protocol relies on a point-to-point communication
//! primitive with the following operations and guarantees:
//!
//! * `send-rdma(m, p)` — writes `m` into a memory region of `p` without
//!   involving `p`'s CPU;
//! * `ack-rdma(m, p)` — delivered to the *sender* by `p`'s NIC once `m` is in
//!   `p`'s memory; from this point `m` will eventually be delivered at `p`
//!   even if the sender crashes;
//! * `deliver-rdma(m, q)` — delivered to `p` when it polls its buffers;
//! * `open(q)` / `close(q)` — grant/revoke `q`'s right to write into the
//!   caller's memory; after `close(q)` completes, `q` cannot land any further
//!   writes;
//! * `flush()` — blocks the caller until every acknowledged message addressed
//!   to it has been delivered.
//!
//! This module holds the *state* of the simulated RDMA fabric: per-process
//! permission sets and per-process inboxes of messages that have reached
//! memory. The event scheduling lives in [`crate::world`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ratc_types::ProcessId;

/// Token identifying an individual RDMA write, echoed back in the
/// acknowledgement upcall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RdmaToken(u64);

impl RdmaToken {
    /// Creates a token from a raw number.
    pub const fn new(raw: u64) -> Self {
        RdmaToken(raw)
    }

    /// Returns the raw number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// Outcome of an RDMA write arriving at the target NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaSendOutcome {
    /// The write landed in the target's memory; an acknowledgement is on its
    /// way back to the sender and the message will eventually be delivered.
    Accepted,
    /// The target had closed (or never opened) the connection; the write was
    /// dropped and no acknowledgement will be produced.
    Rejected,
}

/// A message sitting in a process's memory, written there by RDMA.
#[derive(Debug, Clone)]
pub(crate) struct RdmaEntry<M> {
    pub(crate) from: ProcessId,
    pub(crate) msg: M,
    pub(crate) delivered: bool,
}

/// The RDMA inbox of a single process: messages that have reached its memory
/// (and have therefore been acknowledged to their senders), in arrival order.
#[derive(Debug)]
pub struct RdmaInbox<M> {
    entries: VecDeque<RdmaEntry<M>>,
}

impl<M> Default for RdmaInbox<M> {
    fn default() -> Self {
        RdmaInbox {
            entries: VecDeque::new(),
        }
    }
}

impl<M> RdmaInbox<M> {
    /// Appends a newly arrived message and returns its index for later
    /// delivery scheduling.
    pub(crate) fn push(&mut self, from: ProcessId, msg: M) -> usize {
        self.entries.push_back(RdmaEntry {
            from,
            msg,
            delivered: false,
        });
        self.entries.len() - 1
    }

    /// Number of messages currently held (delivered or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the inbox holds no messages at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of messages not yet delivered to the owning actor.
    pub fn undelivered_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.delivered).count()
    }

    /// Marks the entry at `index` delivered and returns a clone of its
    /// contents, or `None` if it was already delivered (e.g. by a `flush`).
    pub(crate) fn take_for_delivery(&mut self, index: usize) -> Option<(ProcessId, M)>
    where
        M: Clone,
    {
        let entry = self.entries.get_mut(index)?;
        if entry.delivered {
            return None;
        }
        entry.delivered = true;
        Some((entry.from, entry.msg.clone()))
    }

    /// Drains every undelivered message, marking it delivered
    /// (the `flush` operation).
    pub fn drain_undelivered(&mut self) -> Vec<(ProcessId, M)>
    where
        M: Clone,
    {
        let mut drained = Vec::new();
        for entry in self.entries.iter_mut() {
            if !entry.delivered {
                entry.delivered = true;
                drained.push((entry.from, entry.msg.clone()));
            }
        }
        drained
    }
}

/// The state of the whole simulated RDMA fabric.
#[derive(Debug)]
pub(crate) struct RdmaFabric<M> {
    /// `allowed[p]` is the set of peers currently permitted to write into
    /// `p`'s memory.
    allowed: BTreeMap<ProcessId, BTreeSet<ProcessId>>,
    /// Per-process inboxes.
    inboxes: BTreeMap<ProcessId, RdmaInbox<M>>,
    /// Writes rejected because the connection was closed, for metrics and the
    /// counter-example experiment.
    rejected: u64,
}

impl<M> Default for RdmaFabric<M> {
    fn default() -> Self {
        RdmaFabric {
            allowed: BTreeMap::new(),
            inboxes: BTreeMap::new(),
            rejected: 0,
        }
    }
}

impl<M> RdmaFabric<M> {
    /// Grants `peer` the right to write into `owner`'s memory.
    pub(crate) fn open(&mut self, owner: ProcessId, peer: ProcessId) {
        self.allowed.entry(owner).or_default().insert(peer);
    }

    /// Revokes `peer`'s right to write into `owner`'s memory.
    pub(crate) fn close(&mut self, owner: ProcessId, peer: ProcessId) {
        if let Some(set) = self.allowed.get_mut(&owner) {
            set.remove(&peer);
        }
    }

    /// Revokes every peer's right to write into `owner`'s memory.
    pub(crate) fn close_all(&mut self, owner: ProcessId) {
        self.allowed.remove(&owner);
    }

    /// Returns `true` if `peer` may currently write into `owner`'s memory.
    pub(crate) fn is_open(&self, owner: ProcessId, peer: ProcessId) -> bool {
        self.allowed
            .get(&owner)
            .map(|set| set.contains(&peer))
            .unwrap_or(false)
    }

    /// Records the arrival of a write at `owner`'s NIC. Returns the inbox
    /// index if accepted.
    pub(crate) fn arrive(
        &mut self,
        owner: ProcessId,
        from: ProcessId,
        msg: M,
    ) -> Result<usize, RdmaSendOutcome> {
        if !self.is_open(owner, from) {
            self.rejected += 1;
            return Err(RdmaSendOutcome::Rejected);
        }
        Ok(self.inboxes.entry(owner).or_default().push(from, msg))
    }

    /// Temporarily removes `owner`'s inbox so a handler can be given mutable
    /// access to it.
    pub(crate) fn take_inbox(&mut self, owner: ProcessId) -> RdmaInbox<M> {
        self.inboxes.remove(&owner).unwrap_or_default()
    }

    /// Restores `owner`'s inbox after a handler invocation.
    pub(crate) fn put_inbox(&mut self, owner: ProcessId, inbox: RdmaInbox<M>) {
        self.inboxes.insert(owner, inbox);
    }

    /// Total number of rejected writes so far.
    pub(crate) fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Decomposes the fabric into its parts so the threaded backend
    /// ([`crate::rt`]) can share them across threads for the duration of a
    /// run: `(permissions, inboxes, rejected-count)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        BTreeMap<ProcessId, BTreeSet<ProcessId>>,
        BTreeMap<ProcessId, RdmaInbox<M>>,
        u64,
    ) {
        (self.allowed, self.inboxes, self.rejected)
    }

    /// Reassembles a fabric from parts returned by
    /// [`RdmaFabric::into_parts`].
    pub(crate) fn from_parts(
        allowed: BTreeMap<ProcessId, BTreeSet<ProcessId>>,
        inboxes: BTreeMap<ProcessId, RdmaInbox<M>>,
        rejected: u64,
    ) -> Self {
        RdmaFabric {
            allowed,
            inboxes,
            rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_permissioning() {
        let mut fabric: RdmaFabric<u32> = RdmaFabric::default();
        let owner = ProcessId::new(1);
        let peer = ProcessId::new(2);
        assert!(!fabric.is_open(owner, peer));
        fabric.open(owner, peer);
        assert!(fabric.is_open(owner, peer));
        fabric.close(owner, peer);
        assert!(!fabric.is_open(owner, peer));
    }

    #[test]
    fn arrive_respects_permissions() {
        let mut fabric: RdmaFabric<u32> = RdmaFabric::default();
        let owner = ProcessId::new(1);
        let peer = ProcessId::new(2);
        assert_eq!(
            fabric.arrive(owner, peer, 7).unwrap_err(),
            RdmaSendOutcome::Rejected
        );
        assert_eq!(fabric.rejected_count(), 1);
        fabric.open(owner, peer);
        let idx = fabric.arrive(owner, peer, 8).expect("accepted");
        assert_eq!(idx, 0);
        let mut inbox = fabric.take_inbox(owner);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.take_for_delivery(0), Some((peer, 8)));
        assert_eq!(inbox.take_for_delivery(0), None);
        fabric.put_inbox(owner, inbox);
    }

    #[test]
    fn flush_semantics() {
        let mut inbox: RdmaInbox<u32> = RdmaInbox::default();
        inbox.push(ProcessId::new(5), 1);
        inbox.push(ProcessId::new(5), 2);
        assert_eq!(inbox.undelivered_count(), 2);
        assert!(!inbox.is_empty());
        let drained = inbox.drain_undelivered();
        assert_eq!(drained.len(), 2);
        assert_eq!(inbox.undelivered_count(), 0);
        // Delivery events scheduled for drained entries become no-ops.
        assert_eq!(inbox.take_for_delivery(0), None);
        assert_eq!(inbox.take_for_delivery(1), None);
    }

    #[test]
    fn token_round_trip() {
        let t = RdmaToken::new(42);
        assert_eq!(t.as_u64(), 42);
    }
}
