//! The simulation world: event loop, actors, channels, crashes and RDMA fabric.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use ratc_obs::{CtrlEvent, CtrlMilestone, TxMilestone, TxObsEvent};
use ratc_types::{ProcessId, ShardId, TxId};

use crate::actor::{dispatch, Actor, Context, Effect, TimerId, Upcall};
use crate::event::{EventKind, QueuedEvent};
use crate::faults::{FaultDecision, FaultPlane, LinkFault};
use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::rdma::{RdmaFabric, RdmaToken};
use crate::time::{SimDuration, SimTime};
use crate::trace::{label_of, TraceEvent, TraceKind};

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Seed of the deterministic random-number generator.
    pub seed: u64,
    /// Latency model for message-passing sends.
    pub latency: LatencyModel,
    /// Latency for an RDMA write to reach the target NIC.
    pub rdma_write_latency: LatencyModel,
    /// Latency for the NIC-generated acknowledgement to reach the sender.
    pub rdma_ack_latency: LatencyModel,
    /// Delay between a message reaching memory and the receiver's poller
    /// delivering it to the actor.
    pub rdma_poll_delay: LatencyModel,
    /// Whether to record a full transport-level trace.
    pub trace: bool,
    /// Upper bound on retained trace events (`None` = unbounded, the right
    /// choice for checkers that replay a whole trace). When set, the trace
    /// behaves as a ring buffer over the most recent events so long soaks
    /// with tracing on no longer grow memory without limit; trimming happens
    /// in batches, so up to `2 × capacity` events may be resident briefly.
    pub trace_capacity: Option<usize>,
    /// Whether to record commit-path observability (transaction lifecycle
    /// milestones and flow-control gauges). Off by default; recording only
    /// appends to metrics buffers, so enabling it never changes the event
    /// schedule of a seeded run.
    pub obs: bool,
    /// Hard cap on the number of events executed by [`World::run`], as a
    /// safeguard against protocol bugs that generate unbounded message storms.
    pub max_steps: u64,
    /// Virtual CPU cost of handling one delivered message (simulator only;
    /// zero by default). With the default of zero, handler execution is free
    /// in virtual time — which is exactly why the simulator historically
    /// could not reproduce the baseline's congestive collapse: retry storms
    /// cost nothing, so the backlog never grows. A nonzero service time gives
    /// each process a single-server queue (a message delivered while the
    /// process is still busy waits until it frees up), which makes overload
    /// — offered work per tick exceeding `1/service` — reproducible
    /// deterministically in virtual time.
    pub service: SimDuration,
}

impl Default for SimConfig {
    fn default() -> Self {
        let latency = LatencyModel::default();
        SimConfig {
            seed: 42,
            // One-sided RDMA operations complete considerably faster than
            // request/response messaging; a 1/3 factor is representative and
            // only affects simulated-time results, never message-delay counts.
            rdma_write_latency: latency.scaled(1, 3),
            rdma_ack_latency: latency.scaled(1, 3),
            rdma_poll_delay: LatencyModel::constant(5),
            latency,
            trace: false,
            trace_capacity: None,
            obs: false,
            max_steps: 50_000_000,
            service: SimDuration::ZERO,
        }
    }
}

impl SimConfig {
    /// Returns a copy of this configuration with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy of this configuration with tracing enabled.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Returns a copy of this configuration retaining at most `capacity`
    /// trace events (see [`SimConfig::trace_capacity`]).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Returns a copy of this configuration with commit-path observability
    /// enabled (see [`SimConfig::obs`]).
    pub fn with_observability(mut self) -> Self {
        self.obs = true;
        self
    }

    /// Returns a copy of this configuration with the given base latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.rdma_write_latency = latency.scaled(1, 3);
        self.rdma_ack_latency = latency.scaled(1, 3);
        self.latency = latency;
        self
    }

    /// Returns a copy of this configuration with a per-delivery service time
    /// of `micros` microseconds (see [`SimConfig::service`]).
    pub fn with_service_micros(mut self, micros: u64) -> Self {
        self.service = SimDuration::from_micros(micros);
        self
    }
}

/// The deterministic discrete-event simulation world.
///
/// See the [crate-level documentation](crate) for an overview and an example.
pub struct World<M> {
    config: SimConfig,
    pub(crate) now: SimTime,
    seq: u64,
    pub(crate) steps: u64,
    pub(crate) queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    pub(crate) actors: BTreeMap<ProcessId, Option<Box<dyn Actor<M>>>>,
    next_pid: u64,
    pub(crate) crashed: BTreeSet<ProcessId>,
    fifo_last: BTreeMap<(ProcessId, ProcessId), SimTime>,
    rng: ChaCha12Rng,
    pub(crate) metrics: Metrics,
    trace: Vec<TraceEvent>,
    pub(crate) rdma: RdmaFabric<M>,
    pub(crate) next_timer_id: u64,
    pub(crate) next_rdma_token: u64,
    pub(crate) cancelled_timers: BTreeSet<TimerId>,
    faults: FaultPlane,
    /// Crash-restart incarnation per process; timers never survive into a
    /// later incarnation.
    pub(crate) incarnations: BTreeMap<ProcessId, u64>,
    /// Single-server queueing under a nonzero [`SimConfig::service`]: the
    /// virtual time before which each process cannot accept its next message
    /// delivery. Unused (and empty) when the service time is zero.
    busy_until: BTreeMap<ProcessId, SimTime>,
    /// Sequence numbers of deferred deliveries whose service slot is already
    /// reserved in `busy_until`; executed directly on their second pop.
    service_reserved: std::collections::BTreeSet<u64>,
}

impl<M> fmt::Debug for World<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .field("queued_events", &self.queue.len())
            .field("steps", &self.steps)
            .field("crashed", &self.crashed)
            .finish()
    }
}

/// The reserved process identifier used as the sender of externally injected
/// messages (e.g. transaction submissions from the experiment driver).
pub const EXTERNAL: ProcessId = ProcessId::new(u64::MAX);

impl<M: Clone + fmt::Debug + 'static> World<M> {
    /// Creates an empty world.
    pub fn new(config: SimConfig) -> Self {
        let rng = ChaCha12Rng::seed_from_u64(config.seed);
        let mut metrics = Metrics::with_obs(config.obs);
        // The control-plane observability buffer shares the transport
        // trace's bound (the capacity travels inside `Metrics` so the
        // threaded backend's per-worker collectors enforce it too).
        metrics.set_ctrl_capacity(config.trace_capacity);
        World {
            config,
            now: SimTime::ZERO,
            seq: 0,
            steps: 0,
            queue: BinaryHeap::new(),
            actors: BTreeMap::new(),
            next_pid: 0,
            crashed: BTreeSet::new(),
            fifo_last: BTreeMap::new(),
            rng,
            metrics,
            trace: Vec::new(),
            rdma: RdmaFabric::default(),
            next_timer_id: 0,
            next_rdma_token: 0,
            cancelled_timers: BTreeSet::new(),
            faults: FaultPlane::default(),
            incarnations: BTreeMap::new(),
            busy_until: BTreeMap::new(),
            service_reserved: std::collections::BTreeSet::new(),
        }
    }

    /// Adds an actor to the world, assigning it the next free process
    /// identifier, and invokes its [`Actor::on_start`] handler.
    pub fn add_actor<A: Actor<M>>(&mut self, actor: A) -> ProcessId {
        self.add_actor_boxed(Box::new(actor))
    }

    /// Adds an already-boxed actor to the world.
    pub fn add_actor_boxed(&mut self, actor: Box<dyn Actor<M>>) -> ProcessId {
        let pid = ProcessId::new(self.next_pid);
        self.next_pid += 1;
        self.actors.insert(pid, Some(actor));
        self.with_actor(pid, 0, Upcall::Start);
        pid
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The identifiers of all actors ever added, in creation order.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        self.actors.keys().copied().collect()
    }

    /// Returns `true` if `pid` has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.crashed.contains(&pid)
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The transport-level trace (empty unless tracing was enabled; only the
    /// most recent events when [`SimConfig::trace_capacity`] is set).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Stamps a transaction lifecycle milestone at the current time on
    /// behalf of `by`, if observability is enabled.
    ///
    /// This is the harness-side twin of
    /// [`Context::obs_milestone`](crate::actor::Context::obs_milestone) for
    /// milestones that happen *outside* any actor handler — e.g. the client
    /// submission a harness injects with [`World::send_external`].
    pub fn obs_milestone(&mut self, tx: TxId, milestone: TxMilestone, by: ProcessId) {
        if self.metrics.obs_enabled() {
            let at_micros = self.now.as_micros();
            self.metrics.obs_record(TxObsEvent {
                tx,
                at_micros,
                by,
                milestone,
                detail: 0,
            });
        }
    }

    /// Stamps a control-plane milestone at the current time on behalf of
    /// `by`, if observability is enabled.
    ///
    /// This is the harness-side twin of
    /// [`Context::ctrl_milestone`](crate::actor::Context::ctrl_milestone)
    /// for cluster-scope events that happen *outside* any actor handler —
    /// e.g. a fault the chaos harness injects. `note` carries free-form
    /// context (the fault's display form); pass `""` for none.
    pub fn ctrl_milestone(
        &mut self,
        by: ProcessId,
        milestone: CtrlMilestone,
        shard: Option<ShardId>,
        note: &str,
    ) {
        if self.metrics.obs_enabled() {
            let at_micros = self.now.as_micros();
            self.metrics.ctrl_record(CtrlEvent {
                at_micros,
                by,
                milestone,
                shard,
                detail: 0,
                note: note.to_owned(),
            });
        }
    }

    /// Stamps a substrate-level control-plane milestone (crash/restart) with
    /// a milestone-specific detail and no shard attribution (the harness
    /// layer re-attributes from its roster).
    fn ctrl_stamp(&mut self, by: ProcessId, milestone: CtrlMilestone, detail: u64) {
        if self.metrics.obs_enabled() {
            let at_micros = self.now.as_micros();
            self.metrics.ctrl_record(CtrlEvent {
                at_micros,
                by,
                milestone,
                shard: None,
                detail,
                note: String::new(),
            });
        }
    }

    /// Total RDMA writes rejected because the target had closed the connection.
    pub fn rdma_rejected(&self) -> u64 {
        self.rdma.rejected_count()
    }

    /// Downcasts the actor at `pid` to its concrete type.
    pub fn actor<T: 'static>(&self, pid: ProcessId) -> Option<&T> {
        let actor = self.actors.get(&pid)?.as_ref()?;
        let any: &dyn Any = actor.as_ref();
        any.downcast_ref::<T>()
    }

    /// Downcasts the actor at `pid` to its concrete type, mutably.
    ///
    /// Mutating actor state from outside the simulation is intended for test
    /// setup only.
    pub fn actor_mut<T: 'static>(&mut self, pid: ProcessId) -> Option<&mut T> {
        let actor = self.actors.get_mut(&pid)?.as_mut()?;
        let any: &mut dyn Any = actor.as_mut();
        any.downcast_mut::<T>()
    }

    /// Injects `msg` to `to` from the external environment (hop count 0),
    /// delivered at the current simulated time.
    pub fn send_external(&mut self, to: ProcessId, msg: M) {
        self.push_event(
            self.now,
            EventKind::Deliver {
                from: EXTERNAL,
                to,
                msg,
                hops: 0,
            },
        );
    }

    /// Injects `msg` to `to`, apparently from `from`, with hop count 0,
    /// subject to normal network latency and FIFO ordering.
    pub fn send_from(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        self.schedule_message(from, to, msg, 0);
    }

    /// Injects an RDMA write of `msg` into `to`'s memory, apparently from
    /// `from`, with hop count 0. Used by scripted tests (e.g. the Figure 4a
    /// counter-example) that need to play a protocol role by hand; actors
    /// normally use [`Context::rdma_send`].
    pub fn rdma_send_from(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        let token = RdmaToken::new(self.next_rdma_token);
        self.next_rdma_token += 1;
        self.schedule_rdma_write(from, to, msg, 0, token);
    }

    /// Crashes `pid` immediately: it receives no further events.
    pub fn crash(&mut self, pid: ProcessId) {
        self.execute_crash(pid);
    }

    /// Schedules a crash of `pid` at absolute time `at`.
    pub fn schedule_crash(&mut self, pid: ProcessId, at: SimTime) {
        let at = at.max(self.now);
        self.push_event(at, EventKind::Crash { at: pid });
    }

    /// Restarts a crashed process: it keeps its actor state (whatever the
    /// actor models as stable storage) but loses everything volatile —
    /// pending timers never fire in the new incarnation, and the RDMA
    /// permissions it had granted are gone (the crash closed them, like QPs
    /// dying with the NIC). The RDMA memory region itself *persists*: §5's
    /// correctness argument counts an acknowledged write as persisted at the
    /// target, so the region models non-volatile memory, and a restarting
    /// actor recovers its content with [`Context::rdma_flush`].
    /// [`Actor::on_restart`] runs with a fresh context so the actor can
    /// recover (e.g. rebuild its certification index from checkpoint +
    /// suffix) and re-establish connections. Returns `false` if `pid` was
    /// not crashed.
    pub fn restart(&mut self, pid: ProcessId) -> bool {
        if !self.crashed.remove(&pid) {
            return false;
        }
        *self.incarnations.entry(pid).or_insert(0) += 1;
        let incarnation = self.incarnations[&pid];
        self.record_trace(TraceKind::Restart, pid, pid, "restart".to_owned(), 0);
        self.ctrl_stamp(pid, CtrlMilestone::Restart, incarnation);
        self.with_actor(pid, 0, Upcall::Restart);
        true
    }

    // -- fault injection (see [`crate::faults`]) -----------------------------

    /// Installs (or clears, with `None`) fabric-wide background noise applied
    /// to every non-exempt link that has no per-link override.
    pub fn set_default_link_fault(&mut self, fault: Option<LinkFault>) {
        self.faults.set_default(fault);
    }

    /// Installs a probabilistic fault on the directed link `from -> to`.
    pub fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: LinkFault) {
        self.faults.set_link(from, to, fault);
    }

    /// Removes the per-link fault on `from -> to` (the default, if any, then
    /// applies again).
    pub fn clear_link_fault(&mut self, from: ProcessId, to: ProcessId) {
        self.faults.clear_link(from, to);
    }

    /// Cuts the directed link `from -> to` entirely (asymmetric link
    /// failure): every send in both transports is dropped until
    /// [`World::clear_link_fault`] or [`World::heal_all_faults`].
    pub fn cut_link(&mut self, from: ProcessId, to: ProcessId) {
        self.faults
            .set_link(from, to, LinkFault::cut(crate::faults::FaultScope::All));
    }

    /// Installs a named partition: traffic between different groups is
    /// dropped until the partition is healed. Processes not listed in any
    /// group are unaffected by this partition.
    pub fn install_partition(&mut self, name: &str, groups: Vec<Vec<ProcessId>>) {
        self.faults.install_partition(name, groups);
    }

    /// Heals the named partition.
    pub fn heal_partition(&mut self, name: &str) {
        self.faults.heal_partition(name);
    }

    /// Heals every per-link fault, cut and partition. Fabric-wide background
    /// noise installed with [`World::set_default_link_fault`] stays in place
    /// until cleared explicitly.
    pub fn heal_all_faults(&mut self) {
        self.faults.heal_all();
    }

    /// Marks `pid` as fault-exempt: links to and from it are never faulted.
    /// Harnesses exempt the configuration service and the client, which play
    /// the paper's reliable external services.
    pub fn mark_fault_exempt(&mut self, pid: ProcessId) {
        self.faults.mark_exempt(pid);
    }

    /// Grants `peer` the right to RDMA-write into `owner`'s memory, as part of
    /// test or experiment setup (actors normally use
    /// [`Context::rdma_open`]).
    pub fn rdma_open(&mut self, owner: ProcessId, peer: ProcessId) {
        self.rdma.open(owner, peer);
    }

    /// Runs until the event queue is empty or the step cap is reached.
    /// Returns the number of events executed by this call.
    pub fn run(&mut self) -> u64 {
        let start = self.steps;
        while self.steps - start < self.config.max_steps && self.step() {}
        self.steps - start
    }

    /// Runs until simulated time reaches `until` (exclusive), the queue is
    /// empty, or the step cap is reached. Afterwards the clock is advanced to
    /// `until` if it has not passed it already.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let start = self.steps;
        loop {
            if self.steps - start >= self.config.max_steps {
                break;
            }
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.time < until => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < until {
            self.now = until;
        }
        self.steps - start
    }

    /// Executes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time must not go backwards");
        // Service-time model (simulator only; see [`SimConfig::service`]): a
        // message arriving while its target is still handling an earlier one
        // waits in the target's queue. The service slot is reserved at
        // deferral time and the delivery requeued exactly once, to the start
        // of its slot — amortised O(1) per message even under a deep backlog.
        // Slots are granted in pop order (= arrival order: later arrivals
        // get later sequence numbers), preserving per-link FIFO; deferrals
        // count as steps so `max_steps` still bounds storms.
        if self.config.service != SimDuration::ZERO {
            if let EventKind::Deliver { to, .. } = &event.kind {
                if !self.service_reserved.remove(&event.seq) {
                    let free = self.busy_until.get(to).copied().unwrap_or(SimTime::ZERO);
                    let to = *to;
                    if free > event.time {
                        self.busy_until.insert(to, free + self.config.service);
                        self.now = event.time;
                        self.steps += 1;
                        let seq = self.push_event(free, event.kind);
                        self.service_reserved.insert(seq);
                        return true;
                    }
                    self.busy_until.insert(to, event.time + self.config.service);
                }
            }
        }
        self.now = event.time;
        self.steps += 1;
        self.execute(event.kind);
        true
    }

    // -- internals ---------------------------------------------------------

    pub(crate) fn push_event(&mut self, time: SimTime, kind: EventKind<M>) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { time, seq, kind }));
        seq
    }

    fn record_trace(
        &mut self,
        kind: TraceKind,
        from: ProcessId,
        to: ProcessId,
        label: String,
        hops: u32,
    ) {
        if self.config.trace {
            self.trace.push(TraceEvent {
                time: self.now,
                kind,
                from,
                to,
                label,
                hops,
            });
            if let Some(capacity) = self.config.trace_capacity {
                // Amortised ring behaviour: let the buffer grow to twice the
                // capacity, then drop the oldest half in one batch (O(1)
                // amortised per event, unlike a per-event `remove(0)`).
                let capacity = capacity.max(1);
                if self.trace.len() >= capacity.saturating_mul(2) {
                    let excess = self.trace.len() - capacity;
                    self.trace.drain(..excess);
                }
            }
        }
    }

    fn schedule_message(&mut self, from: ProcessId, to: ProcessId, msg: M, hops: u32)
    where
        M: Clone,
    {
        if self.metrics.obs_enabled() {
            // A faulted (dropped) message still counts as sent: the counter
            // measures offered protocol traffic, not delivery success.
            let label = label_of(&msg);
            self.metrics.on_msg_sent(&label);
        }
        let fault = self.fault_decision(from, to, false);
        if fault.drop {
            self.metrics.add_counter("faults_msg_dropped", 1);
            self.record_trace(TraceKind::DropFault, from, to, label_of(&msg), hops);
            return;
        }
        let latency = self.config.latency.sample(&mut self.rng);
        let earliest = self.now + latency;
        let fifo_floor = self
            .fifo_last
            .get(&(from, to))
            .map(|t| *t + SimDuration::from_micros(1))
            .unwrap_or(SimTime::ZERO);
        let delivery = earliest.max(fifo_floor);
        self.record_trace(TraceKind::Send, from, to, label_of(&msg), hops);
        if fault.duplicate {
            // The duplicate gets an independent latency and does not advance
            // the FIFO floor (it is a spurious extra copy).
            self.metrics.add_counter("faults_msg_duplicated", 1);
            let dup_latency = self.config.latency.sample(&mut self.rng);
            self.push_event(
                delivery + dup_latency,
                EventKind::Deliver {
                    from,
                    to,
                    msg: msg.clone(),
                    hops,
                },
            );
        }
        if let Some(extra) = fault.extra_delay {
            // Delivered late without advancing the FIFO floor, so later sends
            // on the same channel may overtake it (delay implies reordering).
            self.metrics.add_counter("faults_msg_delayed", 1);
            self.push_event(
                delivery + extra,
                EventKind::Deliver {
                    from,
                    to,
                    msg,
                    hops,
                },
            );
            return;
        }
        self.fifo_last.insert((from, to), delivery);
        self.push_event(
            delivery,
            EventKind::Deliver {
                from,
                to,
                msg,
                hops,
            },
        );
    }

    fn schedule_rdma_write(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: M,
        hops: u32,
        token: RdmaToken,
    ) where
        M: Clone,
    {
        if self.metrics.obs_enabled() {
            let label = label_of(&msg);
            self.metrics.on_msg_sent(&label);
        }
        let fault = self.fault_decision(from, to, true);
        if fault.drop {
            // The write is lost on the wire: no arrival, no acknowledgement.
            self.metrics.add_counter("faults_rdma_dropped", 1);
            self.record_trace(TraceKind::DropFault, from, to, label_of(&msg), hops);
            return;
        }
        let latency = self.config.rdma_write_latency.sample(&mut self.rng);
        let earliest = self.now + latency;
        // RDMA writes into a ring buffer are FIFO per sender/receiver pair,
        // like ordinary channels.
        let fifo_floor = self
            .fifo_last
            .get(&(from, to))
            .map(|t| *t + SimDuration::from_micros(1))
            .unwrap_or(SimTime::ZERO);
        let arrival = earliest.max(fifo_floor);
        if fault.duplicate {
            // The NIC sees the same write twice; both copies land (and both
            // produce an acknowledgement for the same token, the second of
            // which the sender ignores).
            self.metrics.add_counter("faults_rdma_duplicated", 1);
            let dup_latency = self.config.rdma_write_latency.sample(&mut self.rng);
            self.push_event(
                arrival + dup_latency,
                EventKind::RdmaArrive {
                    from,
                    to,
                    msg: msg.clone(),
                    hops: hops + 1,
                    token,
                },
            );
        }
        if let Some(extra) = fault.extra_delay {
            self.metrics.add_counter("faults_rdma_delayed", 1);
            self.push_event(
                arrival + extra,
                EventKind::RdmaArrive {
                    from,
                    to,
                    msg,
                    hops: hops + 1,
                    token,
                },
            );
            return;
        }
        self.fifo_last.insert((from, to), arrival);
        self.push_event(
            arrival,
            EventKind::RdmaArrive {
                from,
                to,
                msg,
                hops: hops + 1,
                token,
            },
        );
    }

    fn fault_decision(&mut self, from: ProcessId, to: ProcessId, is_rdma: bool) -> FaultDecision {
        if from == EXTERNAL {
            // Externally injected traffic models the test driver, not a
            // network link.
            return FaultDecision::CLEAN;
        }
        self.faults.decide(from, to, is_rdma, &mut self.rng)
    }

    fn apply_effects(&mut self, pid: ProcessId, hops: u32, effects: Vec<Effect<M>>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.schedule_message(pid, to, msg, hops + 1),
                Effect::RdmaSend { to, msg, token } => {
                    self.schedule_rdma_write(pid, to, msg, hops, token)
                }
                Effect::RdmaOpen { peer } => self.rdma.open(pid, peer),
                Effect::RdmaClose { peer } => self.rdma.close(pid, peer),
                Effect::RdmaCloseAll => self.rdma.close_all(pid),
                Effect::SetTimer { delay, tag, id } => {
                    let at = self.now + delay;
                    let incarnation = self.incarnations.get(&pid).copied().unwrap_or(0);
                    self.push_event(
                        at,
                        EventKind::Timer {
                            at: pid,
                            id,
                            tag,
                            incarnation,
                        },
                    );
                }
                Effect::CancelTimer { id } => {
                    self.cancelled_timers.insert(id);
                }
            }
        }
    }

    /// Drives the actor `pid` through the shared [`dispatch`] seam with a
    /// fresh context, then applies the effects it produced. Returns `false`
    /// if the actor does not exist or has crashed.
    fn with_actor(&mut self, pid: ProcessId, hops: u32, upcall: Upcall<M>) -> bool {
        if self.crashed.contains(&pid) {
            return false;
        }
        let Some(slot) = self.actors.get_mut(&pid) else {
            return false;
        };
        let Some(mut actor) = slot.take() else {
            return false;
        };
        let mut inbox = self.rdma.take_inbox(pid);
        let effects;
        {
            let mut ctx = Context {
                self_id: pid,
                now: self.now,
                hops,
                effects: Vec::new(),
                metrics: &mut self.metrics,
                inbox: &mut inbox,
                next_timer_id: &mut self.next_timer_id,
                next_rdma_token: &mut self.next_rdma_token,
            };
            dispatch(actor.as_mut(), upcall, &mut ctx);
            effects = std::mem::take(&mut ctx.effects);
        }
        self.rdma.put_inbox(pid, inbox);
        if let Some(slot) = self.actors.get_mut(&pid) {
            *slot = Some(actor);
        }
        self.apply_effects(pid, hops, effects);
        true
    }

    fn execute_crash(&mut self, pid: ProcessId) {
        if self.crashed.insert(pid) {
            self.busy_until.remove(&pid);
            self.record_trace(TraceKind::Crash, pid, pid, "crash".to_owned(), 0);
            let incarnation = self.incarnations.get(&pid).copied().unwrap_or(0);
            self.ctrl_stamp(pid, CtrlMilestone::Crash, incarnation);
            // The NIC dies with the process: every permission it had granted
            // is revoked, and a later restart must re-open connections.
            self.rdma.close_all(pid);
            if let Some(Some(actor)) = self.actors.get_mut(&pid) {
                actor.on_crash();
            }
        }
    }

    fn execute(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver {
                from,
                to,
                msg,
                hops,
            } => {
                if self.crashed.contains(&to) || !self.actors.contains_key(&to) {
                    self.record_trace(TraceKind::DropCrashed, from, to, label_of(&msg), hops);
                    return;
                }
                self.record_trace(TraceKind::Deliver, from, to, label_of(&msg), hops);
                self.metrics.on_receive(to);
                if self.metrics.obs_enabled() {
                    let label = label_of(&msg);
                    self.metrics.on_msg_delivered(&label);
                }
                self.with_actor(to, hops, Upcall::Message { from, msg });
            }
            EventKind::Timer {
                at,
                id,
                tag,
                incarnation,
            } => {
                if self.cancelled_timers.remove(&id) || self.crashed.contains(&at) {
                    return;
                }
                if self.incarnations.get(&at).copied().unwrap_or(0) != incarnation {
                    // The timer was set by an earlier incarnation of a
                    // crashed-and-restarted process; it died with the crash.
                    return;
                }
                self.record_trace(TraceKind::Timer, at, at, format!("timer#{tag}"), 0);
                self.with_actor(at, 0, Upcall::Timer { tag });
            }
            EventKind::RdmaArrive {
                from,
                to,
                msg,
                hops,
                token,
            } => {
                if self.crashed.contains(&to) {
                    self.record_trace(TraceKind::DropCrashed, from, to, label_of(&msg), hops);
                    return;
                }
                let label = label_of(&msg);
                match self.rdma.arrive(to, from, msg) {
                    Ok(index) => {
                        self.record_trace(TraceKind::RdmaAccept, from, to, label, hops);
                        let ack_latency = self.config.rdma_ack_latency.sample(&mut self.rng);
                        let ack_at = self.now + ack_latency;
                        self.push_event(
                            ack_at,
                            EventKind::RdmaAck {
                                sender: from,
                                target: to,
                                token,
                                hops: hops + 1,
                            },
                        );
                        let poll_delay = self.config.rdma_poll_delay.sample(&mut self.rng);
                        let deliver_at = self.now + poll_delay;
                        self.push_event(
                            deliver_at,
                            EventKind::RdmaDeliver {
                                at: to,
                                index,
                                hops,
                            },
                        );
                    }
                    Err(_) => {
                        self.metrics.rdma_rejected += 1;
                        self.record_trace(TraceKind::RdmaReject, from, to, label, hops);
                    }
                }
            }
            EventKind::RdmaAck {
                sender,
                target,
                token,
                hops,
            } => {
                if self.crashed.contains(&sender) {
                    return;
                }
                self.record_trace(
                    TraceKind::RdmaAck,
                    target,
                    sender,
                    format!("ack#{}", token.as_u64()),
                    hops,
                );
                self.metrics.on_rdma_ack(sender);
                self.with_actor(sender, hops, Upcall::RdmaAck { token, to: target });
            }
            EventKind::RdmaDeliver { at, index, hops } => {
                if self.crashed.contains(&at) {
                    return;
                }
                // Pull the entry out of the inbox first; it may have been
                // consumed already by a flush.
                let mut inbox = self.rdma.take_inbox(at);
                let entry = inbox.take_for_delivery(index);
                self.rdma.put_inbox(at, inbox);
                if let Some((from, msg)) = entry {
                    self.record_trace(TraceKind::RdmaDeliver, from, at, label_of(&msg), hops);
                    self.metrics.on_rdma_deliver(at);
                    if self.metrics.obs_enabled() {
                        let label = label_of(&msg);
                        self.metrics.on_msg_delivered(&label);
                    }
                    self.with_actor(at, hops, Upcall::RdmaDeliver { from, msg });
                }
            }
            EventKind::Crash { at } => self.execute_crash(at),
        }
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> World<M> {
    /// Runs the world on the threaded backend ([`crate::rt`]) until every
    /// in-flight message and armed timer has drained, bounded by
    /// [`crate::rt::QUIESCENCE_TIMEOUT`]. One OS thread per live process,
    /// real time, wall-clock timers; see the [`crate::rt`] module docs for
    /// the exact semantics and how they differ from [`World::run`].
    /// Returns the number of events executed by this call.
    pub fn run_threaded(&mut self) -> u64 {
        crate::rt::run_threaded(self, None)
    }

    /// Runs the world on the threaded backend until it quiesces or until
    /// virtual time reaches `until`, whichever comes first (the threaded
    /// counterpart of [`World::run_until`]). Afterwards the clock is at
    /// least `until`. Returns the number of events executed by this call.
    pub fn run_threaded_until(&mut self, until: SimTime) -> u64 {
        crate::rt::run_threaded(self, Some(until))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::TimerTag;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
        Note(u64),
    }

    /// An actor that replies to pings and records everything it sees.
    #[derive(Default)]
    struct Recorder {
        messages: Vec<(ProcessId, Msg)>,
        rdma_messages: Vec<(ProcessId, Msg)>,
        acks: Vec<RdmaToken>,
        timers: Vec<TimerTag>,
        crashed: bool,
    }

    impl Actor<Msg> for Recorder {
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if msg == Msg::Ping {
                ctx.send(from, Msg::Pong);
            }
            self.messages.push((from, msg));
        }

        fn on_timer(&mut self, tag: TimerTag, _ctx: &mut Context<'_, Msg>) {
            self.timers.push(tag);
        }

        fn on_rdma_ack(&mut self, token: RdmaToken, _to: ProcessId, _ctx: &mut Context<'_, Msg>) {
            self.acks.push(token);
        }

        fn on_rdma_deliver(&mut self, from: ProcessId, msg: Msg, _ctx: &mut Context<'_, Msg>) {
            self.rdma_messages.push((from, msg));
        }

        fn on_crash(&mut self) {
            self.crashed = true;
        }
    }

    /// An actor that performs a scripted action on start.
    struct Starter {
        target: ProcessId,
    }

    impl Actor<Msg> for Starter {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.target, Msg::Ping);
            ctx.set_timer(SimDuration::from_micros(100), 7);
        }

        fn on_message(&mut self, _from: ProcessId, _msg: Msg, _ctx: &mut Context<'_, Msg>) {}
    }

    fn world() -> World<Msg> {
        World::new(SimConfig::default().with_trace())
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.send_from(a, b, Msg::Ping);
        w.run();
        let b_actor = w.actor::<Recorder>(b).expect("actor b");
        assert_eq!(b_actor.messages, vec![(a, Msg::Ping)]);
        let a_actor = w.actor::<Recorder>(a).expect("actor a");
        assert_eq!(a_actor.messages, vec![(b, Msg::Pong)]);
        // Hop accounting: Ping delivered with 0 hops, Pong with 1.
        let deliveries: Vec<u32> = w
            .trace()
            .iter()
            .filter(|e| e.kind == TraceKind::Deliver)
            .map(|e| e.hops)
            .collect();
        assert_eq!(deliveries, vec![0, 1]);
        assert_eq!(w.metrics().received(b), 1);
        assert_eq!(w.metrics().sent(b), 1);
    }

    #[test]
    fn service_time_makes_each_process_a_single_server_queue() {
        use crate::latency::LatencyModel;
        // 5 messages arrive ~10us apart but each costs 100us to handle: the
        // receiver drains them back-to-back, so the last one executes no
        // earlier than 4 full service times after the first.
        let mut w: World<Msg> = World::new(
            SimConfig::default()
                .with_latency(LatencyModel::constant(10))
                .with_service_micros(100),
        );
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        for i in 0..5 {
            w.send_from(a, b, Msg::Note(i));
        }
        w.run();
        let notes: Vec<u64> = w
            .actor::<Recorder>(b)
            .expect("b")
            .messages
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::Note(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(notes, vec![0, 1, 2, 3, 4], "FIFO preserved under queueing");
        assert!(
            w.now().as_micros() >= 10 + 4 * 100,
            "clock reflects queueing delay, now = {:?}",
            w.now()
        );
    }

    #[test]
    fn on_start_runs_and_timers_fire() {
        let mut w = world();
        let target = w.add_actor(Recorder::default());
        let starter = w.add_actor(Starter { target });
        w.run();
        assert_eq!(
            w.actor::<Recorder>(target).expect("recorder").messages,
            vec![(starter, Msg::Ping)]
        );
        // Starter's timer fired but Starter ignores timers; Recorder saw none.
        assert!(w
            .actor::<Recorder>(target)
            .expect("recorder")
            .timers
            .is_empty());
        assert!(w.now() >= SimTime::from_micros(100));
    }

    #[test]
    fn fifo_order_is_preserved_per_channel() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        for i in 0..50 {
            w.send_from(a, b, Msg::Note(i));
        }
        w.run();
        let notes: Vec<u64> = w
            .actor::<Recorder>(b)
            .expect("b")
            .messages
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::Note(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(notes, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn trace_capacity_bounds_the_buffer_to_the_most_recent_events() {
        let capacity = 20usize;
        let mut w: World<Msg> = World::new(
            SimConfig::default()
                .with_trace()
                .with_trace_capacity(capacity),
        );
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        // 200 sends produce 400+ trace events (Send + Deliver each), far past
        // the trim threshold of 2 × capacity.
        for i in 0..200 {
            w.send_from(a, b, Msg::Note(i));
        }
        w.run();
        let trace = w.trace();
        assert!(
            trace.len() < capacity * 2,
            "trace grew past the ring bound: {} events",
            trace.len()
        );
        assert!(!trace.is_empty(), "ring must retain the most recent events");
        // The ring keeps the *newest* suffix: all 200 `Send` events were
        // recorded at time zero (before the run), so only later deliveries
        // survive, and what remains is still time-ordered.
        assert!(
            trace.first().expect("non-empty").time > SimTime::ZERO,
            "oldest events were not evicted"
        );
        assert_eq!(trace.last().expect("non-empty").kind, TraceKind::Deliver);
        assert!(trace.windows(2).all(|pair| pair[0].time <= pair[1].time));
    }

    #[test]
    fn crashed_actor_receives_nothing() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.crash(b);
        assert!(w.is_crashed(b));
        w.send_from(a, b, Msg::Ping);
        w.run();
        assert!(w.actor::<Recorder>(b).expect("b").messages.is_empty());
        assert!(w.actor::<Recorder>(b).expect("b").crashed);
        // The drop was traced.
        assert!(w.trace().iter().any(|e| e.kind == TraceKind::DropCrashed));
    }

    #[test]
    fn scheduled_crash_takes_effect_at_time() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.schedule_crash(b, SimTime::from_micros(30));
        // This message arrives after the crash (latency >= 40us by default).
        w.send_from(a, b, Msg::Ping);
        w.run();
        assert!(w.actor::<Recorder>(b).expect("b").messages.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut w = World::<Msg>::new(SimConfig::default().with_seed(seed).with_trace());
            let a = w.add_actor(Recorder::default());
            let b = w.add_actor(Recorder::default());
            for i in 0..20 {
                w.send_from(a, b, Msg::Note(i));
                w.send_from(b, a, Msg::Note(i));
            }
            w.run();
            w.trace().to_vec()
        };
        assert_eq!(run(7), run(7));
        // Different seeds give different delivery times (almost surely).
        let t1 = run(7);
        let t2 = run(8);
        assert_ne!(
            t1.iter().map(|e| e.time).collect::<Vec<_>>(),
            t2.iter().map(|e| e.time).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rdma_write_ack_and_delivery() {
        let mut w = world();
        let receiver_pid = w.add_actor(Recorder::default());

        // Drive the sender from a message handler so the write goes through a context.
        struct RdmaSender {
            to: ProcessId,
        }
        impl Actor<Msg> for RdmaSender {
            fn on_message(&mut self, _from: ProcessId, _msg: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.rdma_send(self.to, Msg::Note(99));
            }
        }
        let driver = w.add_actor(RdmaSender { to: receiver_pid });
        w.rdma_open(receiver_pid, driver);
        w.send_external(driver, Msg::Ping);
        w.run();

        let receiver = w.actor::<Recorder>(receiver_pid).expect("receiver");
        assert_eq!(receiver.rdma_messages, vec![(driver, Msg::Note(99))]);
        assert_eq!(w.metrics().process(driver).rdma_acks, 1);
        assert_eq!(w.rdma_rejected(), 0);
    }

    #[test]
    fn rdma_write_to_closed_connection_is_rejected_without_ack() {
        let mut w = world();
        let receiver_pid = w.add_actor(Recorder::default());
        struct RdmaSender {
            to: ProcessId,
        }
        impl Actor<Msg> for RdmaSender {
            fn on_message(&mut self, _from: ProcessId, _msg: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.rdma_send(self.to, Msg::Note(1));
            }
        }
        let driver = w.add_actor(RdmaSender { to: receiver_pid });
        // No rdma_open: the connection is closed.
        w.send_external(driver, Msg::Ping);
        w.run();
        assert_eq!(w.rdma_rejected(), 1);
        assert_eq!(w.metrics().rdma_rejected, 1);
        assert!(w
            .actor::<Recorder>(receiver_pid)
            .expect("receiver")
            .rdma_messages
            .is_empty());
        assert_eq!(w.metrics().process(driver).rdma_acks, 0);
    }

    #[test]
    fn run_until_stops_at_time() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.send_from(a, b, Msg::Ping);
        // Default latency is at least 40us, so nothing is delivered by 10us.
        w.run_until(SimTime::from_micros(10));
        assert!(w.actor::<Recorder>(b).expect("b").messages.is_empty());
        assert_eq!(w.now(), SimTime::from_micros(10));
        w.run();
        assert_eq!(w.actor::<Recorder>(b).expect("b").messages.len(), 1);
    }

    #[test]
    fn downcast_to_wrong_type_returns_none() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        assert!(w.actor::<Starter>(a).is_none());
        assert!(w.actor::<Recorder>(a).is_some());
        assert!(w.actor_mut::<Recorder>(a).is_some());
        assert!(w.actor::<Recorder>(ProcessId::new(999)).is_none());
    }

    #[test]
    fn cut_link_drops_messages_one_way() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.cut_link(a, b);
        w.send_from(a, b, Msg::Note(1));
        w.send_from(b, a, Msg::Note(2));
        w.run();
        assert!(w.actor::<Recorder>(b).expect("b").messages.is_empty());
        assert_eq!(
            w.actor::<Recorder>(a).expect("a").messages,
            vec![(b, Msg::Note(2))]
        );
        assert_eq!(w.metrics().counter("faults_msg_dropped"), 1);
        assert!(w.trace().iter().any(|e| e.kind == TraceKind::DropFault));
        w.clear_link_fault(a, b);
        w.send_from(a, b, Msg::Note(3));
        w.run();
        assert_eq!(
            w.actor::<Recorder>(b).expect("b").messages,
            vec![(a, Msg::Note(3))]
        );
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_healed() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        let c = w.add_actor(Recorder::default());
        w.install_partition("split", vec![vec![a], vec![b]]);
        w.send_from(a, b, Msg::Note(1));
        w.send_from(a, c, Msg::Note(2));
        w.run();
        assert!(w.actor::<Recorder>(b).expect("b").messages.is_empty());
        assert_eq!(w.actor::<Recorder>(c).expect("c").messages.len(), 1);
        w.heal_partition("split");
        w.send_from(a, b, Msg::Note(3));
        w.run();
        assert_eq!(w.actor::<Recorder>(b).expect("b").messages.len(), 1);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.set_link_fault(
            a,
            b,
            crate::faults::LinkFault {
                drop: 0.0,
                duplicate: 1.0,
                delay: 0.0,
                delay_micros: (0, 0),
                scope: crate::faults::FaultScope::All,
            },
        );
        w.send_from(a, b, Msg::Note(7));
        w.run();
        assert_eq!(
            w.actor::<Recorder>(b).expect("b").messages,
            vec![(a, Msg::Note(7)), (a, Msg::Note(7))]
        );
        assert_eq!(w.metrics().counter("faults_msg_duplicated"), 1);
    }

    #[test]
    fn delay_fault_reorders_later_sends_past_the_delayed_one() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        let b = w.add_actor(Recorder::default());
        w.set_link_fault(
            a,
            b,
            crate::faults::LinkFault::delay_all(10_000, crate::faults::FaultScope::All),
        );
        w.send_from(a, b, Msg::Note(1));
        w.clear_link_fault(a, b);
        w.send_from(a, b, Msg::Note(2));
        w.run();
        let notes: Vec<u64> = w
            .actor::<Recorder>(b)
            .expect("b")
            .messages
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::Note(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(notes, vec![2, 1], "the delayed first send arrives last");
        assert_eq!(w.metrics().counter("faults_msg_delayed"), 1);
    }

    #[test]
    fn restart_revives_a_crashed_actor_and_kills_stale_timers() {
        struct Restartable {
            restarts: u64,
            timers: Vec<TimerTag>,
        }
        impl Actor<Msg> for Restartable {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_micros(50), 1);
            }
            fn on_message(&mut self, _f: ProcessId, _m: Msg, _c: &mut Context<'_, Msg>) {}
            fn on_timer(&mut self, tag: TimerTag, _ctx: &mut Context<'_, Msg>) {
                self.timers.push(tag);
            }
            fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
                self.restarts += 1;
                ctx.set_timer(SimDuration::from_micros(50), 2);
            }
        }
        let mut w = world();
        let a = w.add_actor(Restartable {
            restarts: 0,
            timers: Vec::new(),
        });
        w.crash(a);
        assert!(w.is_crashed(a));
        assert!(w.restart(a));
        assert!(!w.is_crashed(a));
        assert!(!w.restart(a), "restarting a live process is a no-op");
        w.run();
        let actor = w.actor::<Restartable>(a).expect("actor");
        assert_eq!(actor.restarts, 1);
        // The pre-crash timer (tag 1) died with the old incarnation; only the
        // re-armed tag-2 timer fired.
        assert_eq!(actor.timers, vec![2]);
        assert!(w.trace().iter().any(|e| e.kind == TraceKind::Restart));
    }

    #[test]
    fn crash_revokes_rdma_permissions_but_memory_persists_across_restart() {
        let mut w = world();
        let receiver = w.add_actor(Recorder::default());
        struct RdmaSender {
            to: ProcessId,
        }
        impl Actor<Msg> for RdmaSender {
            fn on_message(&mut self, _f: ProcessId, _m: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.rdma_send(self.to, Msg::Note(5));
            }
        }
        let driver = w.add_actor(RdmaSender { to: receiver });
        w.rdma_open(receiver, driver);
        // A write lands (and is acknowledged) before the crash, but its
        // delivery poll happens while the receiver is down.
        w.send_external(driver, Msg::Ping);
        let arrival = w.run_until(SimTime::from_micros(25));
        assert!(arrival > 0);
        w.crash(receiver);
        w.run();
        assert_eq!(w.metrics().process(driver).rdma_acks, 1, "write was acked");
        assert!(w
            .actor::<Recorder>(receiver)
            .expect("r")
            .rdma_messages
            .is_empty());
        w.restart(receiver);
        // The region is persistent: the acknowledged write is recoverable by
        // a flush after restart (here triggered via an actor context).
        let mut inbox = w.rdma.take_inbox(receiver);
        let recovered = inbox.drain_undelivered();
        w.rdma.put_inbox(receiver, inbox);
        assert_eq!(recovered, vec![(driver, Msg::Note(5))]);
        // The crash revoked the permission the receiver had granted: new
        // writes are rejected until a fresh open.
        w.send_external(driver, Msg::Ping);
        w.run();
        assert_eq!(w.rdma_rejected(), 1);
        w.rdma_open(receiver, driver);
        w.send_external(driver, Msg::Ping);
        w.run();
        assert_eq!(
            w.actor::<Recorder>(receiver).expect("r").rdma_messages,
            vec![(driver, Msg::Note(5))]
        );
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut w = World::<Msg>::new(SimConfig::default().with_seed(seed).with_trace());
            let a = w.add_actor(Recorder::default());
            let b = w.add_actor(Recorder::default());
            w.set_default_link_fault(Some(crate::faults::LinkFault::noise(0.2, 0.2, 0.2, 500)));
            for i in 0..40 {
                w.send_from(a, b, Msg::Note(i));
                w.send_from(b, a, Msg::Note(100 + i));
            }
            w.run();
            w.trace().to_vec()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(
            run(11).iter().map(|e| e.time).collect::<Vec<_>>(),
            run(12).iter().map(|e| e.time).collect::<Vec<_>>()
        );
    }

    #[test]
    fn external_send_has_zero_hops() {
        let mut w = world();
        let a = w.add_actor(Recorder::default());
        w.send_external(a, Msg::Ping);
        w.run();
        let deliveries: Vec<u32> = w
            .trace()
            .iter()
            .filter(|e| e.kind == TraceKind::Deliver)
            .map(|e| e.hops)
            .collect();
        assert_eq!(deliveries, vec![0]);
        assert_eq!(w.process_ids(), vec![a]);
        assert!(w.steps() > 0);
    }
}
