//! Simulated time.
//!
//! The simulator measures time in abstract microseconds. Nothing in the
//! protocol logic depends on the absolute scale; experiments report either
//! simulated durations or message-delay (hop) counts.
// analyze:allow-file(float-state): time is stored and compared in integer
// microseconds; the f64 here is the one-way `as_millis_f64` conversion for
// report output, which no protocol or scheduling decision reads back.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Returns the raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_micros(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Returns the raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(1);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!(t2.as_micros(), 1_500);
        assert_eq!((t2 - t).as_micros(), 500);
        assert_eq!(t2.since(t), SimDuration::from_micros(500));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_micros(2_000).as_millis_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(1_500).as_millis_f64(), 1.5);
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO.since(SimTime::from_micros(1));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(9).to_string(), "9us");
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(10);
        assert_eq!(t.as_micros(), 10);
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_micros(5);
        assert_eq!(d + SimDuration::from_micros(1), SimDuration::from_micros(6));
    }
}
