//! Optional message tracing.
//!
//! When enabled in [`SimConfig`](crate::world::SimConfig), the world records a
//! [`TraceEvent`] for every transport-level event. Traces are used by the
//! specification checkers (to reconstruct message flows), by the
//! counter-example experiment (to show the exact interleaving of Figure 4a)
//! and for debugging protocol implementations.

use std::fmt;

use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The kind of a transport-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message was handed to the network.
    Send,
    /// A message was delivered to its destination actor.
    Deliver,
    /// A message was dropped because its destination had crashed.
    DropCrashed,
    /// An RDMA write arrived and was accepted into the target's memory.
    RdmaAccept,
    /// An RDMA write arrived but was rejected (connection closed).
    RdmaReject,
    /// An RDMA acknowledgement was delivered to the sender.
    RdmaAck,
    /// An RDMA message was delivered out of local memory to the target actor.
    RdmaDeliver,
    /// A timer fired.
    Timer,
    /// A process crashed.
    Crash,
    /// A crashed process was restarted.
    Restart,
    /// A send was dropped by injected faults (link fault, cut or partition).
    DropFault,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Send => "send",
            TraceKind::Deliver => "deliver",
            TraceKind::DropCrashed => "drop-crashed",
            TraceKind::RdmaAccept => "rdma-accept",
            TraceKind::RdmaReject => "rdma-reject",
            TraceKind::RdmaAck => "rdma-ack",
            TraceKind::RdmaDeliver => "rdma-deliver",
            TraceKind::Timer => "timer",
            TraceKind::Crash => "crash",
            TraceKind::Restart => "restart",
            TraceKind::DropFault => "drop-fault",
        };
        f.write_str(s)
    }
}

/// A single transport-level trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: SimTime,
    /// Event kind.
    pub kind: TraceKind,
    /// Originating process (for timers and crashes, the affected process).
    pub from: ProcessId,
    /// Destination process (equal to `from` for timers and crashes).
    pub to: ProcessId,
    /// Short human-readable label of the message (its `Debug` head).
    pub label: String,
    /// Message-delay (hop) count of the causal chain.
    pub hops: u32,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} -> {} {} (hops {})",
            self.time, self.kind, self.from, self.to, self.label, self.hops
        )
    }
}

/// Produces the short label recorded in traces from a message's `Debug`
/// representation: everything up to the first `(`, `{` or whitespace.
pub fn label_of<M: fmt::Debug>(msg: &M) -> String {
    let full = format!("{msg:?}");
    let end = full
        .find(|c: char| c == '(' || c == '{' || c.is_whitespace())
        .unwrap_or(full.len());
    full[..end].to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    #[allow(dead_code)]
    enum Msg {
        Prepare { tx: u64 },
        Decision(u64),
        Flush,
    }

    #[test]
    fn labels_strip_payloads() {
        assert_eq!(label_of(&Msg::Prepare { tx: 1 }), "Prepare");
        assert_eq!(label_of(&Msg::Decision(2)), "Decision");
        assert_eq!(label_of(&Msg::Flush), "Flush");
    }

    #[test]
    fn display_is_readable() {
        let e = TraceEvent {
            time: SimTime::from_micros(10),
            kind: TraceKind::Send,
            from: ProcessId::new(1),
            to: ProcessId::new(2),
            label: "Prepare".to_owned(),
            hops: 3,
        };
        let s = e.to_string();
        assert!(s.contains("send"));
        assert!(s.contains("p1"));
        assert!(s.contains("Prepare"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(TraceKind::RdmaReject.to_string(), "rdma-reject");
        assert_eq!(TraceKind::Crash.to_string(), "crash");
    }
}
