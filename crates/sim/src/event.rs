//! Internal event queue types.
//!
//! Events are ordered by `(time, sequence number)`; the sequence number is a
//! monotonically increasing tie-breaker that makes the execution order fully
//! deterministic.

use ratc_types::ProcessId;

use crate::actor::{TimerId, TimerTag};
use crate::rdma::RdmaToken;
use crate::time::SimTime;

/// The kind of a queued event.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver a network message.
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        hops: u32,
    },
    /// Fire a timer. `incarnation` is the crash-restart incarnation of the
    /// process at the time the timer was set; a timer set before a crash never
    /// fires in a later incarnation.
    Timer {
        at: ProcessId,
        id: TimerId,
        tag: TimerTag,
        incarnation: u64,
    },
    /// An RDMA write reaches the target NIC.
    RdmaArrive {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        hops: u32,
        token: RdmaToken,
    },
    /// An RDMA acknowledgement reaches the original sender.
    RdmaAck {
        sender: ProcessId,
        target: ProcessId,
        token: RdmaToken,
        hops: u32,
    },
    /// The target actor polls an RDMA message out of its memory.
    RdmaDeliver {
        at: ProcessId,
        index: usize,
        hops: u32,
    },
    /// A process crashes.
    Crash { at: ProcessId },
}

/// An event queued for execution at `time`.
#[derive(Debug)]
pub(crate) struct QueuedEvent<M> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for QueuedEvent<M> {}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> QueuedEvent<u32> {
        QueuedEvent {
            time: SimTime::from_micros(time),
            seq,
            kind: EventKind::Crash {
                at: ProcessId::new(0),
            },
        }
    }

    #[test]
    fn ordering_is_by_time_then_seq() {
        assert!(ev(1, 5) < ev(2, 0));
        assert!(ev(1, 0) < ev(1, 1));
        assert_eq!(ev(3, 3), ev(3, 3));
        assert!(ev(2, 1) > ev(2, 0));
    }

    #[test]
    fn heap_pops_in_order() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(ev(5, 0)));
        heap.push(Reverse(ev(1, 1)));
        heap.push(Reverse(ev(1, 0)));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.time.as_micros(), e.seq))
            .collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (5, 0)]);
    }
}
