//! Message latency models.
//!
//! The simulator draws a latency sample for every message (and every RDMA
//! write, acknowledgement and delivery poll). Latencies are deterministic
//! functions of the seeded random-number generator, so runs are reproducible.
// analyze:allow-file(float-state): latency parameters are f64 means; each
// sample is a single multiply of one seeded draw, immediately truncated to
// integer microseconds — bit-identical across platforms, no accumulation.

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A latency model for point-to-point messages.
///
/// The default model is [`LatencyModel::Uniform`] between 40 and 60
/// microseconds — a LAN-like regime matching the deployment environment the
/// paper targets ("particularly suitable for deployment in local-area
/// networks", §1). RDMA operations use [`LatencyModel::scaled`] fractions of
/// the base model to reflect their lower latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this many microseconds.
    Constant(u64),
    /// Latency is drawn uniformly from `[min_micros, max_micros]`.
    Uniform {
        /// Minimum latency in microseconds.
        min_micros: u64,
        /// Maximum latency in microseconds (inclusive).
        max_micros: u64,
    },
}

impl LatencyModel {
    /// A constant latency of `micros` microseconds.
    pub const fn constant(micros: u64) -> Self {
        LatencyModel::Constant(micros)
    }

    /// A uniform latency in `[min_micros, max_micros]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_micros > max_micros`.
    pub fn uniform(min_micros: u64, max_micros: u64) -> Self {
        assert!(min_micros <= max_micros, "min must not exceed max");
        LatencyModel::Uniform {
            min_micros,
            max_micros,
        }
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut ChaCha12Rng) -> SimDuration {
        let micros = match *self {
            LatencyModel::Constant(micros) => micros,
            LatencyModel::Uniform {
                min_micros,
                max_micros,
            } => {
                if min_micros == max_micros {
                    min_micros
                } else {
                    rng.gen_range(min_micros..=max_micros)
                }
            }
        };
        SimDuration::from_micros(micros)
    }

    /// Returns a copy of this model with all parameters scaled by
    /// `numerator / denominator` (used to derive RDMA latencies from the base
    /// network latency).
    pub fn scaled(&self, numerator: u64, denominator: u64) -> LatencyModel {
        assert!(denominator > 0, "denominator must be positive");
        let scale = |v: u64| (v * numerator / denominator).max(1);
        match *self {
            LatencyModel::Constant(micros) => LatencyModel::Constant(scale(micros)),
            LatencyModel::Uniform {
                min_micros,
                max_micros,
            } => LatencyModel::Uniform {
                min_micros: scale(min_micros),
                max_micros: scale(max_micros),
            },
        }
    }

    /// The mean latency of this model, in microseconds.
    pub fn mean_micros(&self) -> f64 {
        match *self {
            LatencyModel::Constant(micros) => micros as f64,
            LatencyModel::Uniform {
                min_micros,
                max_micros,
            } => (min_micros + max_micros) as f64 / 2.0,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Uniform {
            min_micros: 40,
            max_micros: 60,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_model_is_constant() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let m = LatencyModel::constant(25);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng).as_micros(), 25);
        }
        assert_eq!(m.mean_micros(), 25.0);
    }

    #[test]
    fn uniform_model_is_in_range_and_deterministic() {
        let m = LatencyModel::uniform(10, 20);
        let mut rng1 = ChaCha12Rng::seed_from_u64(7);
        let mut rng2 = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            let a = m.sample(&mut rng1).as_micros();
            let b = m.sample(&mut rng2).as_micros();
            assert_eq!(a, b);
            assert!((10..=20).contains(&a));
        }
        assert_eq!(m.mean_micros(), 15.0);
    }

    #[test]
    fn degenerate_uniform_range() {
        let m = LatencyModel::uniform(5, 5);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(m.sample(&mut rng).as_micros(), 5);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn invalid_uniform_range_panics() {
        let _ = LatencyModel::uniform(10, 5);
    }

    #[test]
    fn scaling() {
        let m = LatencyModel::uniform(40, 60).scaled(1, 4);
        assert_eq!(
            m,
            LatencyModel::Uniform {
                min_micros: 10,
                max_micros: 15
            }
        );
        // Scaling never produces a zero latency.
        let tiny = LatencyModel::constant(1).scaled(1, 10);
        assert_eq!(tiny, LatencyModel::Constant(1));
    }

    #[test]
    fn default_is_lan_like() {
        let m = LatencyModel::default();
        assert!(m.mean_micros() >= 40.0 && m.mean_micros() <= 60.0);
    }
}
