//! Seeded, deterministic exponential backoff with jitter.
//!
//! The fixed-interval retry timers the stacks started with are exactly the
//! congestive-collapse mechanism `BENCH_6.json` recorded: every tick re-drives
//! *every* pending transaction, so once the work added per tick exceeds the
//! work the cluster can absorb per tick, the backlog grows without bound. A
//! [`BackoffPolicy`] replaces the fixed interval with a capped exponential
//! schedule, and decorrelates retry cohorts with deterministic jitter: the
//! jitter fraction is a pure hash of `(salt, attempt)`, so a simulated run is
//! bit-identical for a given seed (no RNG is consulted) while two
//! transactions that started together stop retrying in lockstep.
//!
//! The policy is pure arithmetic over [`SimDuration`]s and is therefore
//! backend-agnostic: the simulator checks deadlines against virtual time, the
//! threaded runtime against the wall clock, both through the same
//! `Context::set_timer` seam.

use crate::time::SimDuration;

/// A capped exponential-backoff schedule with deterministic jitter.
///
/// `delay(attempt, salt)` is `base * multiplier^attempt`, capped at `max`,
/// then jittered by up to ±`jitter_pct`% using a hash of `(salt, attempt)`.
/// Attempt 0 always returns exactly `base` (no jitter): the *first* retry of
/// a transaction keeps the legacy fixed-interval timing, so healthy runs that
/// retry at most once are schedule-identical to the pre-backoff code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound on the (pre-jitter) delay.
    pub max: SimDuration,
    /// Growth factor per attempt (1 = fixed interval).
    pub multiplier: u32,
    /// Jitter amplitude in percent of the delay (0 = none).
    pub jitter_pct: u32,
}

impl BackoffPolicy {
    /// A fixed-interval schedule: every retry waits exactly `interval`
    /// (the legacy behaviour, used when flow control is disabled).
    pub fn fixed(interval: SimDuration) -> Self {
        BackoffPolicy {
            base: interval,
            max: interval,
            multiplier: 1,
            jitter_pct: 0,
        }
    }

    /// The default retry schedule of the flow-control layer: 20 ms doubling
    /// to a 320 ms cap, ±25% jitter from the second attempt on.
    pub fn exponential() -> Self {
        BackoffPolicy {
            base: SimDuration::from_millis(20),
            max: SimDuration::from_millis(320),
            multiplier: 2,
            jitter_pct: 25,
        }
    }

    /// The delay before retry number `attempt` (0-based). Deterministic in
    /// `(self, attempt, salt)`; see the type docs for the schedule.
    pub fn delay(&self, attempt: u32, salt: u64) -> SimDuration {
        let base = self.base.as_micros().max(1);
        let max = self.max.as_micros().max(base);
        let mut micros = base;
        if self.multiplier > 1 {
            for _ in 0..attempt.min(63) {
                micros = micros.saturating_mul(u64::from(self.multiplier));
                if micros >= max {
                    break;
                }
            }
        }
        micros = micros.min(max);
        if attempt > 0 && self.jitter_pct > 0 {
            // Jitter in [-jitter_pct, +jitter_pct]% from a pure hash, so the
            // schedule is seeded by the salt rather than by a shared RNG.
            let h = splitmix64(salt ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15);
            let span = micros * u64::from(self.jitter_pct) / 100;
            if span > 0 {
                let offset = h % (2 * span + 1);
                micros = micros - span + offset;
            }
        }
        SimDuration::from_micros(micros.max(1))
    }
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy::exponential()
    }
}

/// Per-retry-source bookkeeping: which attempt is next and when it is due.
///
/// The owner checks `due(now)` on its (coarse, fixed-interval) retry tick and
/// calls [`BackoffState::fired`] after re-driving, which schedules the next
/// attempt per the policy. [`BackoffState::reset`] is called on progress, so
/// a source that starts making headway returns to the fast schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackoffState {
    /// Retries fired since the last reset.
    pub attempt: u32,
    /// Virtual (or wall-clock-mapped) time before which the next retry must
    /// not fire, as microseconds since the time origin.
    pub next_micros: u64,
}

impl BackoffState {
    /// A fresh state whose first retry is due `policy.delay(0, salt)` after
    /// `now_micros`.
    pub fn armed(policy: &BackoffPolicy, salt: u64, now_micros: u64) -> Self {
        BackoffState {
            attempt: 0,
            next_micros: now_micros + policy.delay(0, salt).as_micros(),
        }
    }

    /// `true` if the next retry is due at `now_micros`.
    pub fn due(&self, now_micros: u64) -> bool {
        now_micros >= self.next_micros
    }

    /// Records that a retry fired at `now_micros` and schedules the next one.
    pub fn fired(&mut self, policy: &BackoffPolicy, salt: u64, now_micros: u64) {
        self.attempt = self.attempt.saturating_add(1);
        self.next_micros = now_micros + policy.delay(self.attempt, salt).as_micros();
    }

    /// Progress was made: return to the fast schedule.
    pub fn reset(&mut self, policy: &BackoffPolicy, salt: u64, now_micros: u64) {
        *self = BackoffState::armed(policy, salt, now_micros);
    }
}

/// SplitMix64: a tiny, well-distributed integer hash (public domain
/// constants), used for jitter so no shared RNG state is consumed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_never_grows_or_jitters() {
        let p = BackoffPolicy::fixed(SimDuration::from_millis(20));
        for attempt in 0..10 {
            assert_eq!(p.delay(attempt, 7), SimDuration::from_millis(20));
        }
    }

    #[test]
    fn first_attempt_is_exactly_base_and_growth_is_capped() {
        let p = BackoffPolicy::exponential();
        assert_eq!(p.delay(0, 99), p.base, "attempt 0 keeps legacy timing");
        let mut prev = p.delay(0, 99).as_micros();
        for attempt in 1..12 {
            let d = p.delay(attempt, 99).as_micros();
            // Never above cap + jitter span.
            let bound = p.max.as_micros() * (100 + u64::from(p.jitter_pct)) / 100;
            assert!(d <= bound, "attempt {attempt}: {d} > {bound}");
            // Grows (up to jitter) until the cap.
            if prev * 2 < p.max.as_micros() / 2 {
                assert!(d > prev, "attempt {attempt} did not grow: {d} <= {prev}");
            }
            prev = d;
        }
    }

    #[test]
    fn jitter_is_deterministic_and_salt_dependent() {
        let p = BackoffPolicy::exponential();
        assert_eq!(p.delay(3, 1), p.delay(3, 1), "same inputs, same delay");
        let distinct = (0..32u64)
            .map(|salt| p.delay(3, salt).as_micros())
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            distinct.len() > 8,
            "jitter decorrelates salts: {distinct:?}"
        );
    }

    #[test]
    fn state_walks_the_schedule_and_resets() {
        let p = BackoffPolicy::exponential();
        let mut s = BackoffState::armed(&p, 5, 1_000);
        assert!(!s.due(1_000));
        assert!(s.due(1_000 + p.base.as_micros()));
        let fire_at = s.next_micros;
        s.fired(&p, 5, fire_at);
        assert_eq!(s.attempt, 1);
        assert!(s.next_micros > fire_at + p.base.as_micros() / 2);
        s.reset(&p, 5, fire_at);
        assert_eq!(s.attempt, 0);
        assert_eq!(s.next_micros, fire_at + p.base.as_micros());
    }
}
