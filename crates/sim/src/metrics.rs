//! Measurement: per-process message counts, named counters and statistics.
//!
//! The experiment harnesses derive every reported number either from these
//! metrics or from recorded TCS histories. Protocol actors record
//! protocol-level numbers (commits, aborts, client-visible message delays)
//! through [`Context::add_counter`](crate::actor::Context::add_counter) and
//! [`Context::record_sample`](crate::actor::Context::record_sample); the world
//! records transport-level numbers (messages sent and received per process,
//! RDMA writes, rejected RDMA writes) automatically.
// analyze:allow-file(float-state): this is the measurement sink itself —
// metrics are derived FROM runs and never feed back into scheduling or
// protocol decisions (pinned by the PR 8 obs-invisibility differential
// tests), so float statistics here cannot perturb replay.

use std::collections::BTreeMap;

use ratc_obs::{CtrlEvent, TxObsEvent};
use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

/// Log-spaced histogram resolution: sub-buckets per octave (power of two).
/// Eight per octave bounds the relative error of a streaming percentile by
/// `2^(1/8) − 1 ≈ 9%`.
const HIST_SUBDIV: f64 = 8.0;

/// Number of histogram buckets: bucket 0 holds values `< 1`, the rest cover
/// `[1, 2^32)` microseconds-scale values in `2^(1/8)` steps — wider than any
/// latency this workspace produces.
const HIST_BUCKETS: usize = 258;

/// The log-spaced bucket index for `value`.
fn hist_index(value: f64) -> usize {
    if value.is_nan() || value < 1.0 {
        // Negative, NaN and sub-unit values all land in bucket 0.
        return 0;
    }
    let index = (value.log2() * HIST_SUBDIV).floor() as usize + 1;
    index.min(HIST_BUCKETS - 1)
}

/// A representative value (the geometric midpoint) of bucket `index`.
fn hist_value(index: usize) -> f64 {
    if index == 0 {
        0.0
    } else {
        ((index as f64 - 0.5) / HIST_SUBDIV).exp2()
    }
}

/// Per-process transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessCounters {
    /// Messages sent over the message-passing network.
    pub sent: u64,
    /// Messages received over the message-passing network.
    pub received: u64,
    /// RDMA writes issued.
    pub rdma_writes: u64,
    /// RDMA acknowledgements received.
    pub rdma_acks: u64,
    /// RDMA messages delivered out of local memory.
    pub rdma_delivered: u64,
}

impl ProcessCounters {
    /// Total messages handled (sent + received + RDMA deliveries), a proxy for
    /// the load placed on the process.
    pub fn handled(&self) -> u64 {
        self.sent + self.received + self.rdma_delivered
    }
}

/// Send/deliver counts for one message type (the type's
/// [`label_of`](crate::trace::label_of) name), recorded only while
/// observability is enabled.
///
/// `sent ≥ delivered` in any run: messages to crashed or partitioned
/// processes are sent but never delivered. Divided by the number of
/// submitted transactions this is the paper's *messages per transaction*
/// broken down by protocol step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgTypeCounters {
    /// Messages of this type handed to the transport.
    pub sent: u64,
    /// Messages of this type delivered to their destination actor.
    pub delivered: u64,
}

/// A streaming summary of a named statistic.
///
/// Besides count/sum/min/max, the summary maintains a small fixed log-spaced
/// histogram so tail percentiles ([`Summary::percentile`]) are available in
/// O(1) memory per statistic — min/mean/max hides exactly the tail latency
/// that matters at overload. For an exact (sorted raw samples) percentile use
/// [`Metrics::percentile`] instead.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of the samples.
    pub sum: f64,
    /// Minimum sample (0 if no samples).
    pub min: f64,
    /// Maximum sample (0 if no samples).
    pub max: f64,
    /// Log-spaced sample histogram (empty until the first sample; bucket
    /// boundaries grow by `2^(1/8)` per bucket).
    pub buckets: Vec<u64>,
}

impl Summary {
    fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
            self.buckets = vec![0; HIST_BUCKETS];
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.count += 1;
        self.sum += value;
        self.buckets[hist_index(value)] += 1;
    }

    /// The mean of the recorded samples, or 0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// A streaming estimate of the `pct` percentile (0–100) of the recorded
    /// samples, or 0 if none were recorded.
    ///
    /// The estimate is the geometric midpoint of the log-spaced histogram
    /// bucket containing the requested rank, clamped into `[min, max]`:
    /// relative error is bounded by the bucket width (`2^(1/8) − 1 ≈ 9%`).
    pub fn percentile(&self, pct: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((pct.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return hist_value(index).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// All metrics collected during a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    per_process: BTreeMap<ProcessId, ProcessCounters>,
    counters: BTreeMap<String, u64>,
    samples: BTreeMap<String, Summary>,
    raw_samples: BTreeMap<String, Vec<f64>>,
    /// Total messages delivered over the message-passing network.
    pub total_delivered: u64,
    /// Total RDMA writes rejected because the connection was closed.
    pub rdma_rejected: u64,
    /// Whether commit-path observability is recording (off by default).
    obs_enabled: bool,
    /// Recorded transaction lifecycle observations, in recording order.
    /// Always empty while `obs_enabled` is false.
    obs: Vec<TxObsEvent>,
    /// Recorded control-plane observations, in recording order. Always empty
    /// while `obs_enabled` is false.
    ctrl: Vec<CtrlEvent>,
    /// Bound on the control-plane buffer (`SimConfig::with_trace_capacity`):
    /// the oldest events are trimmed once the buffer holds twice the
    /// capacity. Carried here (not read from the world's config) so the
    /// threaded backend's per-worker collectors enforce the same bound.
    ctrl_capacity: Option<usize>,
    /// Per-message-type send/deliver counts, recorded only while
    /// `obs_enabled` is true (keeps the default path free of per-send
    /// string work).
    msg_counters: BTreeMap<String, MsgTypeCounters>,
}

impl Metrics {
    /// Creates an empty metrics collector.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Creates an empty collector with commit-path observability switched on
    /// or off.
    pub fn with_obs(obs_enabled: bool) -> Self {
        Metrics {
            obs_enabled,
            ..Metrics::default()
        }
    }

    /// `true` if commit-path observability is recording.
    pub fn obs_enabled(&self) -> bool {
        self.obs_enabled
    }

    /// Appends one lifecycle observation. Callers gate on
    /// [`Metrics::obs_enabled`] so the disabled path stays a branch on a
    /// bool; recording never consults randomness or schedules events, which
    /// is what keeps same-seed runs bit-identical with observability on.
    pub fn obs_record(&mut self, event: TxObsEvent) {
        if self.obs_enabled {
            self.obs.push(event);
        }
    }

    /// The recorded lifecycle observations, in recording order (empty unless
    /// observability was enabled).
    pub fn obs_events(&self) -> &[TxObsEvent] {
        &self.obs
    }

    /// Appends one control-plane observation. Gated and schedule-invisible
    /// exactly like [`Metrics::obs_record`]; additionally enforces the
    /// amortised capacity bound (see [`Metrics::set_ctrl_capacity`]).
    pub fn ctrl_record(&mut self, event: CtrlEvent) {
        if self.obs_enabled {
            self.ctrl.push(event);
            self.trim_ctrl();
        }
    }

    /// The recorded control-plane observations, in recording order (empty
    /// unless observability was enabled).
    pub fn ctrl_events(&self) -> &[CtrlEvent] {
        &self.ctrl
    }

    /// Bounds the control-plane buffer: once it holds `2 × capacity` events
    /// the oldest are trimmed back to `capacity`, so the cost is amortised
    /// O(1) per event and memory stays within `2 × capacity`. `None` (the
    /// default) keeps everything. Wired from
    /// `SimConfig::with_trace_capacity` by the world; the threaded backend
    /// copies it into each worker's collector.
    pub fn set_ctrl_capacity(&mut self, capacity: Option<usize>) {
        self.ctrl_capacity = capacity;
        self.trim_ctrl();
    }

    /// The configured control-plane buffer bound, if any.
    pub fn ctrl_capacity(&self) -> Option<usize> {
        self.ctrl_capacity
    }

    fn trim_ctrl(&mut self) {
        if let Some(capacity) = self.ctrl_capacity {
            let capacity = capacity.max(1);
            if self.ctrl.len() >= capacity.saturating_mul(2) {
                let excess = self.ctrl.len() - capacity;
                self.ctrl.drain(..excess);
            }
        }
    }

    /// Counts one sent message of the given type (its
    /// [`label_of`](crate::trace::label_of) name). Gated on
    /// [`Metrics::obs_enabled`] so the default path does no per-send string
    /// work.
    pub(crate) fn on_msg_sent(&mut self, label: &str) {
        if self.obs_enabled {
            self.count_msg(label).sent += 1;
        }
    }

    /// Counts one delivered message of the given type.
    pub(crate) fn on_msg_delivered(&mut self, label: &str) {
        if self.obs_enabled {
            self.count_msg(label).delivered += 1;
        }
    }

    fn count_msg(&mut self, label: &str) -> &mut MsgTypeCounters {
        if !self.msg_counters.contains_key(label) {
            self.msg_counters
                .insert(label.to_owned(), MsgTypeCounters::default());
        }
        self.msg_counters.get_mut(label).expect("just inserted")
    }

    /// Per-message-type send/deliver counts, keyed by the message type's
    /// [`label_of`](crate::trace::label_of) name (empty unless observability
    /// was enabled).
    pub fn msg_type_counters(&self) -> impl Iterator<Item = (&str, MsgTypeCounters)> + '_ {
        self.msg_counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The send/deliver counts for one message type (zero if never seen).
    pub fn msg_type(&self, label: &str) -> MsgTypeCounters {
        self.msg_counters.get(label).copied().unwrap_or_default()
    }

    pub(crate) fn on_send(&mut self, from: ProcessId) {
        self.per_process.entry(from).or_default().sent += 1;
    }

    pub(crate) fn on_receive(&mut self, to: ProcessId) {
        self.per_process.entry(to).or_default().received += 1;
        self.total_delivered += 1;
    }

    pub(crate) fn on_rdma_write(&mut self, from: ProcessId) {
        self.per_process.entry(from).or_default().rdma_writes += 1;
    }

    pub(crate) fn on_rdma_ack(&mut self, to: ProcessId) {
        self.per_process.entry(to).or_default().rdma_acks += 1;
    }

    pub(crate) fn on_rdma_deliver(&mut self, to: ProcessId) {
        self.per_process.entry(to).or_default().rdma_delivered += 1;
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_default() += delta;
    }

    /// Records a sample of the named statistic.
    pub fn record_sample(&mut self, name: &str, value: f64) {
        self.samples
            .entry(name.to_owned())
            .or_default()
            .record(value);
        self.raw_samples
            .entry(name.to_owned())
            .or_default()
            .push(value);
    }

    /// The value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The summary of the named statistic, if any samples were recorded.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.samples.get(name)
    }

    /// The raw samples of the named statistic, in recording order.
    pub fn samples(&self, name: &str) -> &[f64] {
        self.raw_samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A percentile (0–100) of the named statistic, or `None` if no samples.
    pub fn percentile(&self, name: &str, pct: f64) -> Option<f64> {
        let samples = self.raw_samples.get(name)?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Transport counters for `process`.
    pub fn process(&self, process: ProcessId) -> ProcessCounters {
        self.per_process.get(&process).copied().unwrap_or_default()
    }

    /// Messages sent by `process`.
    pub fn sent(&self, process: ProcessId) -> u64 {
        self.process(process).sent
    }

    /// Messages received by `process`.
    pub fn received(&self, process: ProcessId) -> u64 {
        self.process(process).received
    }

    /// Iterates over all per-process counters.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &ProcessCounters)> + '_ {
        self.per_process.iter().map(|(p, c)| (*p, c))
    }

    /// Iterates over all named counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds another collector into this one: counters and summaries add up,
    /// raw samples are appended. Used by the threaded backend
    /// ([`crate::rt`]) to merge the per-thread collectors back into the
    /// world's collector after a run. Sample ordering across processes is
    /// unspecified (it already is meaningless across actors in the
    /// simulator); percentiles and means are unaffected.
    pub fn absorb(&mut self, other: Metrics) {
        for (pid, counters) in other.per_process {
            let mine = self.per_process.entry(pid).or_default();
            mine.sent += counters.sent;
            mine.received += counters.received;
            mine.rdma_writes += counters.rdma_writes;
            mine.rdma_acks += counters.rdma_acks;
            mine.rdma_delivered += counters.rdma_delivered;
        }
        for (name, value) in other.counters {
            *self.counters.entry(name).or_default() += value;
        }
        for (name, summary) in other.samples {
            let mine = self.samples.entry(name).or_default();
            if mine.count == 0 {
                *mine = summary;
            } else if summary.count > 0 {
                mine.min = mine.min.min(summary.min);
                mine.max = mine.max.max(summary.max);
                mine.count += summary.count;
                mine.sum += summary.sum;
                for (mine, theirs) in mine.buckets.iter_mut().zip(summary.buckets) {
                    *mine += theirs;
                }
            }
        }
        for (name, mut raw) in other.raw_samples {
            self.raw_samples.entry(name).or_default().append(&mut raw);
        }
        self.total_delivered += other.total_delivered;
        self.rdma_rejected += other.rdma_rejected;
        self.obs.extend(other.obs);
        self.ctrl.extend(other.ctrl);
        if self.ctrl_capacity.is_none() {
            self.ctrl_capacity = other.ctrl_capacity;
        }
        self.trim_ctrl();
        for (label, counts) in other.msg_counters {
            let mine = self.msg_counters.entry(label).or_default();
            mine.sent += counts.sent;
            mine.delivered += counts.delivered;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_samples() {
        let mut m = Metrics::new();
        m.add_counter("commits", 2);
        m.add_counter("commits", 3);
        assert_eq!(m.counter("commits"), 5);
        assert_eq!(m.counter("unknown"), 0);

        m.record_sample("lat", 1.0);
        m.record_sample("lat", 3.0);
        m.record_sample("lat", 2.0);
        let s = m.summary("lat").expect("samples recorded");
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean() - 2.0).abs() < f64::EPSILON);
        assert_eq!(m.samples("lat").len(), 3);
        assert_eq!(m.percentile("lat", 0.0), Some(1.0));
        assert_eq!(m.percentile("lat", 100.0), Some(3.0));
        assert_eq!(m.percentile("lat", 50.0), Some(2.0));
        assert_eq!(m.percentile("none", 50.0), None);
    }

    #[test]
    fn per_process_counters() {
        let mut m = Metrics::new();
        let p = ProcessId::new(1);
        m.on_send(p);
        m.on_send(p);
        m.on_receive(p);
        m.on_rdma_write(p);
        m.on_rdma_ack(p);
        m.on_rdma_deliver(p);
        let c = m.process(p);
        assert_eq!(c.sent, 2);
        assert_eq!(c.received, 1);
        assert_eq!(c.rdma_writes, 1);
        assert_eq!(c.rdma_acks, 1);
        assert_eq!(c.rdma_delivered, 1);
        assert_eq!(c.handled(), 4);
        assert_eq!(m.sent(p), 2);
        assert_eq!(m.received(p), 1);
        assert_eq!(m.total_delivered, 1);
        assert_eq!(m.processes().count(), 1);
        assert_eq!(m.counters().count(), 0);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(Summary::default().mean(), 0.0);
        assert_eq!(Summary::default().percentile(99.0), 0.0);
    }

    #[test]
    fn streaming_percentiles_track_the_exact_ones_within_bucket_width() {
        let mut m = Metrics::new();
        for i in 1..=1000 {
            m.record_sample("lat", i as f64);
        }
        let s = m.summary("lat").expect("recorded");
        for pct in [50.0, 95.0, 99.0] {
            let exact = m.percentile("lat", pct).expect("samples");
            let estimate = s.percentile(pct);
            let err = (estimate - exact).abs() / exact;
            assert!(
                err < 0.10,
                "p{pct}: streaming {estimate} vs exact {exact} ({err:.3} rel err)"
            );
        }
        assert!(s.percentile(0.0) >= s.min && s.percentile(0.0) <= s.min * 1.10);
        assert!(s.percentile(100.0) <= s.max);
    }

    #[test]
    fn streaming_percentiles_survive_absorb() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        for i in 1..=500 {
            a.record_sample("lat", i as f64);
            b.record_sample("lat", (500 + i) as f64);
        }
        a.absorb(b);
        let s = a.summary("lat").expect("recorded");
        assert_eq!(s.count, 1000);
        let p50 = s.percentile(50.0);
        assert!(
            (p50 - 500.0).abs() / 500.0 < 0.10,
            "merged p50 {p50} not near 500"
        );
    }

    #[test]
    fn obs_recording_is_gated_and_absorbed() {
        use ratc_obs::{TxMilestone, TxObsEvent};
        use ratc_types::TxId;
        let event = TxObsEvent {
            tx: TxId::new(1),
            at_micros: 10,
            by: ProcessId::new(2),
            milestone: TxMilestone::Submitted,
            detail: 0,
        };
        let mut off = Metrics::new();
        assert!(!off.obs_enabled());
        off.obs_record(event);
        assert!(off.obs_events().is_empty(), "disabled recorder stays empty");

        let mut on = Metrics::with_obs(true);
        on.obs_record(event);
        assert_eq!(on.obs_events().len(), 1);

        let mut other = Metrics::with_obs(true);
        other.obs_record(TxObsEvent {
            at_micros: 20,
            ..event
        });
        on.absorb(other);
        assert_eq!(on.obs_events().len(), 2);
    }

    fn ctrl_event(at: u64) -> ratc_obs::CtrlEvent {
        ratc_obs::CtrlEvent {
            at_micros: at,
            by: ProcessId::new(1),
            milestone: ratc_obs::CtrlMilestone::Crash,
            shard: None,
            detail: 0,
            note: String::new(),
        }
    }

    #[test]
    fn ctrl_recording_is_gated_and_absorbed() {
        let mut off = Metrics::new();
        off.ctrl_record(ctrl_event(10));
        assert!(
            off.ctrl_events().is_empty(),
            "disabled recorder stays empty"
        );

        let mut on = Metrics::with_obs(true);
        on.ctrl_record(ctrl_event(10));
        assert_eq!(on.ctrl_events().len(), 1);

        let mut other = Metrics::with_obs(true);
        other.ctrl_record(ctrl_event(20));
        on.absorb(other);
        assert_eq!(on.ctrl_events().len(), 2);
        assert_eq!(on.ctrl_events()[1].at_micros, 20);
    }

    #[test]
    fn ctrl_buffer_trims_amortised_to_twice_capacity() {
        let mut m = Metrics::with_obs(true);
        m.set_ctrl_capacity(Some(4));
        for i in 0..100 {
            m.ctrl_record(ctrl_event(i));
            assert!(
                m.ctrl_events().len() < 8,
                "buffer exceeded 2x capacity at event {i}"
            );
        }
        // The newest events always survive a trim.
        let last = m.ctrl_events().last().expect("events recorded");
        assert_eq!(last.at_micros, 99);
        let first = m.ctrl_events().first().expect("events recorded");
        assert!(first.at_micros >= 92, "trim kept stale events: {first:?}");

        // The bound also applies when merging worker buffers back.
        let mut worker = Metrics::with_obs(true);
        for i in 100..200 {
            worker.ctrl_record(ctrl_event(i));
        }
        m.absorb(worker);
        assert!(m.ctrl_events().len() <= 8);
        assert_eq!(m.ctrl_events().last().expect("events").at_micros, 199);
    }

    #[test]
    fn msg_type_counters_are_gated_and_absorbed() {
        let mut off = Metrics::new();
        off.on_msg_sent("Prepare");
        assert_eq!(
            off.msg_type("Prepare").sent,
            0,
            "disabled path counts nothing"
        );

        let mut on = Metrics::with_obs(true);
        on.on_msg_sent("Prepare");
        on.on_msg_sent("Prepare");
        on.on_msg_delivered("Prepare");
        on.on_msg_sent("Vote");
        assert_eq!(on.msg_type("Prepare").sent, 2);
        assert_eq!(on.msg_type("Prepare").delivered, 1);
        assert_eq!(on.msg_type("Vote").delivered, 0);
        assert_eq!(on.msg_type("Unknown"), MsgTypeCounters::default());

        let mut other = Metrics::with_obs(true);
        other.on_msg_sent("Vote");
        other.on_msg_delivered("Vote");
        on.absorb(other);
        assert_eq!(on.msg_type("Vote").sent, 2);
        assert_eq!(on.msg_type("Vote").delivered, 1);
        assert_eq!(on.msg_type_counters().count(), 2);
    }
}
