//! The Paxos acceptor state machine.

use std::collections::BTreeMap;

use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;
use crate::messages::{PaxosMsg, Slot};

/// An acceptor: promises ballots and accepts commands per slot.
///
/// The acceptor is a pure state machine: [`Acceptor::handle`] consumes one
/// message and returns the messages to send in response (each paired with its
/// destination).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Acceptor<C> {
    id: ProcessId,
    promised: Ballot,
    accepted: BTreeMap<Slot, (Ballot, C)>,
}

impl<C: Clone> Acceptor<C> {
    /// Creates an acceptor with identifier `id`.
    pub fn new(id: ProcessId) -> Self {
        Acceptor {
            id,
            promised: Ballot::bottom(),
            accepted: BTreeMap::new(),
        }
    }

    /// The acceptor's identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The highest ballot promised so far.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// The command accepted at `slot`, if any.
    pub fn accepted_at(&self, slot: Slot) -> Option<&(Ballot, C)> {
        self.accepted.get(&slot)
    }

    /// Number of slots with an accepted command.
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }

    /// Handles one message from `from`, returning the responses to send.
    pub fn handle(&mut self, from: ProcessId, msg: PaxosMsg<C>) -> Vec<(ProcessId, PaxosMsg<C>)> {
        match msg {
            PaxosMsg::Prepare { ballot } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    let accepted = self
                        .accepted
                        .iter()
                        .map(|(slot, (b, c))| (*slot, *b, c.clone()))
                        .collect();
                    vec![(
                        from,
                        PaxosMsg::Promise {
                            ballot,
                            acceptor: self.id,
                            accepted,
                        },
                    )]
                } else {
                    vec![(
                        from,
                        PaxosMsg::Nack {
                            rejected: ballot,
                            promised: self.promised,
                        },
                    )]
                }
            }
            PaxosMsg::Accept {
                ballot,
                slot,
                command,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.accepted.insert(slot, (ballot, command));
                    vec![(
                        from,
                        PaxosMsg::Accepted {
                            ballot,
                            slot,
                            acceptor: self.id,
                        },
                    )]
                } else {
                    vec![(
                        from,
                        PaxosMsg::Nack {
                            rejected: ballot,
                            promised: self.promised,
                        },
                    )]
                }
            }
            // Acceptors ignore learner traffic and proposer-side messages.
            PaxosMsg::Promise { .. }
            | PaxosMsg::Accepted { .. }
            | PaxosMsg::Chosen { .. }
            | PaxosMsg::Nack { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::new(raw)
    }

    #[test]
    fn promises_monotonically() {
        let mut a: Acceptor<u32> = Acceptor::new(pid(1));
        assert_eq!(a.id(), pid(1));
        let b1 = Ballot::new(1, pid(9));
        let b2 = Ballot::new(2, pid(9));
        let out = a.handle(pid(9), PaxosMsg::Prepare { ballot: b2 });
        assert!(matches!(out[0].1, PaxosMsg::Promise { ballot, .. } if ballot == b2));
        // A lower prepare is nacked.
        let out = a.handle(pid(9), PaxosMsg::Prepare { ballot: b1 });
        assert!(matches!(out[0].1, PaxosMsg::Nack { promised, .. } if promised == b2));
        assert_eq!(a.promised(), b2);
    }

    #[test]
    fn accepts_at_or_above_promise() {
        let mut a: Acceptor<u32> = Acceptor::new(pid(1));
        let b1 = Ballot::new(1, pid(9));
        let out = a.handle(
            pid(9),
            PaxosMsg::Accept {
                ballot: b1,
                slot: 0,
                command: 7,
            },
        );
        assert!(matches!(
            out[0].1,
            PaxosMsg::Accepted { slot: 0, acceptor, .. } if acceptor == pid(1)
        ));
        assert_eq!(a.accepted_at(0), Some(&(b1, 7)));
        assert_eq!(a.accepted_count(), 1);

        // A stale accept at a lower ballot is nacked and does not overwrite.
        let b0 = Ballot::new(0, pid(8));
        let out = a.handle(
            pid(8),
            PaxosMsg::Accept {
                ballot: b0,
                slot: 0,
                command: 9,
            },
        );
        assert!(matches!(out[0].1, PaxosMsg::Nack { .. }));
        assert_eq!(a.accepted_at(0), Some(&(b1, 7)));
    }

    #[test]
    fn promise_reports_previously_accepted_commands() {
        let mut a: Acceptor<u32> = Acceptor::new(pid(1));
        let b1 = Ballot::new(1, pid(9));
        a.handle(
            pid(9),
            PaxosMsg::Accept {
                ballot: b1,
                slot: 3,
                command: 42,
            },
        );
        let b2 = Ballot::new(2, pid(8));
        let out = a.handle(pid(8), PaxosMsg::Prepare { ballot: b2 });
        match &out[0].1 {
            PaxosMsg::Promise { accepted, .. } => {
                assert_eq!(accepted, &vec![(3, b1, 42)]);
            }
            other => panic!("expected promise, got {other:?}"),
        }
    }

    #[test]
    fn ignores_learner_traffic() {
        let mut a: Acceptor<u32> = Acceptor::new(pid(1));
        assert!(a
            .handle(
                pid(2),
                PaxosMsg::Chosen {
                    slot: 0,
                    command: 1
                }
            )
            .is_empty());
        assert!(a
            .handle(
                pid(2),
                PaxosMsg::Nack {
                    rejected: Ballot::bottom(),
                    promised: Ballot::bottom()
                }
            )
            .is_empty());
    }
}
