//! The Multi-Paxos proposer (stable leader) state machine.

use std::collections::{BTreeMap, BTreeSet};

use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;
use crate::messages::{PaxosMsg, Slot};
use crate::quorum;

/// Phase of the proposer's ballot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    /// Phase 1 has not completed; commands are queued.
    Preparing,
    /// Phase 1 completed; commands go straight to phase 2.
    Leading,
}

/// Messages produced by a proposer step, addressed to their recipients.
pub type Outgoing<C> = Vec<(ProcessId, PaxosMsg<C>)>;

/// A Multi-Paxos proposer: runs phase 1 once for its ballot, then assigns
/// commands to consecutive slots using phase 2 only (the standard stable
/// leader optimisation).
///
/// Like [`Acceptor`](crate::acceptor::Acceptor), the proposer is a pure state
/// machine: every input returns the messages to send, plus (from
/// [`Proposer::handle`]) the commands that became chosen as a result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Proposer<C> {
    id: ProcessId,
    acceptors: Vec<ProcessId>,
    ballot: Ballot,
    phase: Phase,
    promises: BTreeSet<ProcessId>,
    /// Highest-ballot accepted command reported per slot during phase 1.
    phase1_accepted: BTreeMap<Slot, (Ballot, C)>,
    next_slot: Slot,
    /// Acks per in-flight slot.
    pending: BTreeMap<Slot, (C, BTreeSet<ProcessId>)>,
    /// Commands queued while phase 1 is still running.
    queued: Vec<C>,
    chosen: BTreeMap<Slot, C>,
}

impl<C: Clone> Proposer<C> {
    /// Creates a proposer with identifier `id` for the given acceptor group,
    /// using ballot round `round`.
    pub fn new(id: ProcessId, acceptors: Vec<ProcessId>, round: u64) -> Self {
        Proposer {
            id,
            acceptors,
            ballot: Ballot::new(round, id),
            phase: Phase::Preparing,
            promises: BTreeSet::new(),
            phase1_accepted: BTreeMap::new(),
            next_slot: 0,
            pending: BTreeMap::new(),
            queued: Vec::new(),
            chosen: BTreeMap::new(),
        }
    }

    /// The proposer's identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The proposer's current ballot.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// Returns `true` once phase 1 has completed and the proposer is the
    /// stable leader for its ballot.
    pub fn is_leading(&self) -> bool {
        self.phase == Phase::Leading
    }

    /// Number of slots this proposer has learned to be chosen.
    pub fn chosen_count(&self) -> usize {
        self.chosen.len()
    }

    /// Starts phase 1: returns `Prepare` messages for every acceptor.
    pub fn start_phase1(&mut self) -> Vec<(ProcessId, PaxosMsg<C>)> {
        self.phase = Phase::Preparing;
        self.promises.clear();
        self.acceptors
            .iter()
            .map(|a| {
                (
                    *a,
                    PaxosMsg::Prepare {
                        ballot: self.ballot,
                    },
                )
            })
            .collect()
    }

    /// Abandons the current ballot and starts phase 1 again with a higher one
    /// (used after receiving a nack).
    pub fn advance_ballot(&mut self) -> Vec<(ProcessId, PaxosMsg<C>)> {
        self.ballot = self.ballot.successor(self.id);
        self.start_phase1()
    }

    /// Submits a command for replication. If phase 1 has not completed yet the
    /// command is queued and will be proposed as soon as it does.
    pub fn propose(&mut self, command: C) -> Vec<(ProcessId, PaxosMsg<C>)> {
        match self.phase {
            Phase::Preparing => {
                self.queued.push(command);
                Vec::new()
            }
            Phase::Leading => self.send_accepts(command),
        }
    }

    fn send_accepts(&mut self, command: C) -> Vec<(ProcessId, PaxosMsg<C>)> {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.pending
            .insert(slot, (command.clone(), BTreeSet::new()));
        self.acceptors
            .iter()
            .map(|a| {
                (
                    *a,
                    PaxosMsg::Accept {
                        ballot: self.ballot,
                        slot,
                        command: command.clone(),
                    },
                )
            })
            .collect()
    }

    /// Returns `true` while the proposer is waiting for something: phase 1
    /// completion, or acceptances of in-flight slots. Embedding protocols use
    /// this to decide whether to arm a retransmission timer, and to tell when
    /// post-restart log recovery (phase 1 plus re-choosing every recovered
    /// slot) has finished.
    pub fn has_pending(&self) -> bool {
        self.phase == Phase::Preparing || !self.pending.is_empty()
    }

    /// Re-sends every message whose reply is still outstanding: the phase-1
    /// `Prepare` while preparing, and a phase-2 `Accept` for every in-flight
    /// slot. Safe under message loss, duplication and reordering — acceptors
    /// treat repeats of the same ballot idempotently — and required for
    /// liveness on lossy links, where a single dropped `Accept` would
    /// otherwise strand its slot forever.
    pub fn retransmit(&mut self) -> Vec<(ProcessId, PaxosMsg<C>)> {
        let mut out = Vec::new();
        match self.phase {
            Phase::Preparing => {
                for a in &self.acceptors {
                    out.push((
                        *a,
                        PaxosMsg::Prepare {
                            ballot: self.ballot,
                        },
                    ));
                }
            }
            Phase::Leading => {
                for (slot, (command, _)) in &self.pending {
                    for a in &self.acceptors {
                        out.push((
                            *a,
                            PaxosMsg::Accept {
                                ballot: self.ballot,
                                slot: *slot,
                                command: command.clone(),
                            },
                        ));
                    }
                }
            }
        }
        out
    }

    /// Handles one message addressed to the proposer. Returns the messages to
    /// send and the `(slot, command)` pairs newly learned to be chosen.
    pub fn handle(&mut self, msg: PaxosMsg<C>) -> (Outgoing<C>, Vec<(Slot, C)>) {
        match msg {
            PaxosMsg::Promise {
                ballot,
                acceptor,
                accepted,
            } => {
                if ballot != self.ballot || self.phase == Phase::Leading {
                    return (Vec::new(), Vec::new());
                }
                // Track the highest-ballot accepted value per slot.
                for (slot, b, c) in accepted {
                    let replace = match self.phase1_accepted.get(&slot) {
                        Some((existing, _)) => b > *existing,
                        None => true,
                    };
                    if replace {
                        self.phase1_accepted.insert(slot, (b, c));
                    }
                }
                // Count *distinct* acceptors: a duplicated or re-transmitted
                // promise must not reach quorum with fewer than a majority of
                // real acceptors (lossy/duplicating networks deliver both).
                self.promises.insert(acceptor);
                if self.promises.len() >= quorum(self.acceptors.len()) {
                    self.phase = Phase::Leading;
                    let mut out = Vec::new();
                    // Re-propose values reported in phase 1 at their slots.
                    let recovered: Vec<(Slot, C)> = self
                        .phase1_accepted
                        .iter()
                        .map(|(slot, (_, c))| (*slot, c.clone()))
                        .collect();
                    for (slot, command) in recovered {
                        self.next_slot = self.next_slot.max(slot + 1);
                        self.pending
                            .insert(slot, (command.clone(), BTreeSet::new()));
                        for a in &self.acceptors {
                            out.push((
                                *a,
                                PaxosMsg::Accept {
                                    ballot: self.ballot,
                                    slot,
                                    command: command.clone(),
                                },
                            ));
                        }
                    }
                    // Flush commands queued while preparing.
                    let queued = std::mem::take(&mut self.queued);
                    for command in queued {
                        out.extend(self.send_accepts(command));
                    }
                    (out, Vec::new())
                } else {
                    (Vec::new(), Vec::new())
                }
            }
            PaxosMsg::Accepted {
                ballot,
                slot,
                acceptor,
            } => {
                if ballot != self.ballot {
                    return (Vec::new(), Vec::new());
                }
                let quorum_size = quorum(self.acceptors.len());
                let mut newly_chosen = Vec::new();
                let mut reached = false;
                if let Some((_, acks)) = self.pending.get_mut(&slot) {
                    acks.insert(acceptor);
                    reached = acks.len() >= quorum_size;
                }
                if reached {
                    if let Some((command, _)) = self.pending.remove(&slot) {
                        self.chosen.insert(slot, command.clone());
                        newly_chosen.push((slot, command));
                    }
                }
                let mut out = Vec::new();
                for (slot, command) in &newly_chosen {
                    for a in &self.acceptors {
                        if *a != self.id {
                            out.push((
                                *a,
                                PaxosMsg::Chosen {
                                    slot: *slot,
                                    command: command.clone(),
                                },
                            ));
                        }
                    }
                }
                (out, newly_chosen)
            }
            PaxosMsg::Nack { promised, .. } => {
                // Someone holds a higher ballot; our ballot is dead. The
                // embedding protocol decides whether to retry via
                // `advance_ballot`. Record the higher ballot so the retry
                // overtakes it.
                if promised > self.ballot {
                    self.ballot = Ballot::new(promised.round, self.id);
                }
                (Vec::new(), Vec::new())
            }
            PaxosMsg::Prepare { .. } | PaxosMsg::Accept { .. } | PaxosMsg::Chosen { .. } => {
                (Vec::new(), Vec::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptor::Acceptor;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::new(raw)
    }

    /// Runs a fully connected proposer + acceptors loop until no messages
    /// remain, returning chosen (slot, command) pairs in choose order.
    fn run_to_quiescence(
        proposer: &mut Proposer<u32>,
        acceptors: &mut [Acceptor<u32>],
        mut outbox: Vec<(ProcessId, PaxosMsg<u32>)>,
    ) -> Vec<(Slot, u32)> {
        let mut chosen = Vec::new();
        while let Some((to, msg)) = outbox.pop() {
            if to == proposer.id() {
                let (more, newly) = proposer.handle(msg);
                outbox.extend(more);
                chosen.extend(newly);
            } else {
                for acceptor in acceptors.iter_mut() {
                    if acceptor.id() == to {
                        let more = acceptor.handle(proposer.id(), msg.clone());
                        outbox.extend(more);
                    }
                }
            }
        }
        chosen
    }

    fn setup() -> (Proposer<u32>, Vec<Acceptor<u32>>) {
        let ids = vec![pid(0), pid(1), pid(2)];
        let proposer = Proposer::new(pid(0), ids.clone(), 0);
        let acceptors = ids.into_iter().map(Acceptor::new).collect();
        (proposer, acceptors)
    }

    #[test]
    fn phase1_then_commands_are_chosen_in_order() {
        let (mut proposer, mut acceptors) = setup();
        let mut outbox = proposer.start_phase1();
        outbox.extend(proposer.propose(10));
        outbox.extend(proposer.propose(20));
        let mut chosen = run_to_quiescence(&mut proposer, &mut acceptors, outbox);
        chosen.sort_unstable();
        assert_eq!(chosen, vec![(0, 10), (1, 20)]);
        assert!(proposer.is_leading());
        assert_eq!(proposer.chosen_count(), 2);
        assert_eq!(proposer.ballot(), Ballot::new(0, pid(0)));
    }

    #[test]
    fn commands_queued_before_phase1_are_not_lost() {
        let (mut proposer, mut acceptors) = setup();
        // Propose before starting phase 1: the command must be queued.
        assert!(proposer.propose(77).is_empty());
        let outbox = proposer.start_phase1();
        let chosen = run_to_quiescence(&mut proposer, &mut acceptors, outbox);
        assert_eq!(chosen, vec![(0, 77)]);
    }

    #[test]
    fn phase1_recovers_previously_accepted_values() {
        let ids = vec![pid(0), pid(1), pid(2)];
        let mut acceptors: Vec<Acceptor<u32>> = ids.iter().copied().map(Acceptor::new).collect();
        // A previous leader (pid 9) got command 5 accepted at slot 0 on one acceptor.
        acceptors[1].handle(
            pid(9),
            PaxosMsg::Accept {
                ballot: Ballot::new(1, pid(9)),
                slot: 0,
                command: 5,
            },
        );
        let mut proposer = Proposer::new(pid(0), ids, 2);
        let outbox = proposer.start_phase1();
        let chosen = run_to_quiescence(&mut proposer, &mut acceptors, outbox);
        assert!(
            chosen.contains(&(0, 5)),
            "recovered value must be re-chosen"
        );
    }

    #[test]
    fn nack_advances_ballot() {
        let (mut proposer, _) = setup();
        let _ = proposer.start_phase1();
        let (out, chosen) = proposer.handle(PaxosMsg::Nack {
            rejected: Ballot::new(0, pid(0)),
            promised: Ballot::new(5, pid(2)),
        });
        assert!(out.is_empty());
        assert!(chosen.is_empty());
        let retry = proposer.advance_ballot();
        assert_eq!(retry.len(), 3);
        assert!(proposer.ballot() > Ballot::new(5, pid(2)));
    }

    /// Pinned regression (chaos nemesis finding): a *duplicated* promise from
    /// one acceptor must not count towards the phase-1 quorum twice. The old
    /// implementation counted promises with a synthetic counter, so one
    /// duplicated promise let a proposer lead with a single real acceptor.
    #[test]
    fn duplicated_promise_does_not_reach_quorum() {
        let ids = vec![pid(0), pid(1), pid(2)];
        let mut proposer: Proposer<u32> = Proposer::new(pid(0), ids, 0);
        let _ = proposer.start_phase1();
        let promise = PaxosMsg::Promise {
            ballot: proposer.ballot(),
            acceptor: pid(1),
            accepted: vec![],
        };
        let _ = proposer.handle(promise.clone());
        let _ = proposer.handle(promise);
        assert!(
            !proposer.is_leading(),
            "one acceptor promising twice is not a majority of three"
        );
        // A second, distinct acceptor completes the quorum.
        let _ = proposer.handle(PaxosMsg::Promise {
            ballot: proposer.ballot(),
            acceptor: pid(2),
            accepted: vec![],
        });
        assert!(proposer.is_leading());
    }

    #[test]
    fn retransmit_repeats_outstanding_work_and_recovers_lost_accepts() {
        let (mut proposer, mut acceptors) = setup();
        // Phase 1 never delivered: retransmit re-sends Prepare to everyone.
        let _ = proposer.start_phase1();
        assert!(proposer.has_pending() || proposer.retransmit().len() == 3);
        let outbox = proposer.retransmit();
        assert_eq!(outbox.len(), 3);
        assert!(outbox
            .iter()
            .all(|(_, m)| matches!(m, PaxosMsg::Prepare { .. })));
        let chosen = run_to_quiescence(&mut proposer, &mut acceptors, outbox);
        assert!(chosen.is_empty());
        assert!(proposer.is_leading());

        // An Accept is "lost" (never delivered): the slot stays pending, and
        // retransmission alone drives it to chosen.
        let lost = proposer.propose(9);
        drop(lost);
        assert!(proposer.has_pending());
        let retry = proposer.retransmit();
        assert!(retry
            .iter()
            .all(|(_, m)| matches!(m, PaxosMsg::Accept { slot: 0, .. })));
        let chosen = run_to_quiescence(&mut proposer, &mut acceptors, retry);
        assert_eq!(chosen, vec![(0, 9)]);
        assert!(!proposer.has_pending());
    }

    #[test]
    fn stale_ballot_messages_are_ignored() {
        let (mut proposer, mut acceptors) = setup();
        let outbox = proposer.start_phase1();
        let _ = run_to_quiescence(&mut proposer, &mut acceptors, outbox);
        // An Accepted for a different ballot is ignored.
        let (out, chosen) = proposer.handle(PaxosMsg::Accepted {
            ballot: Ballot::new(9, pid(3)),
            slot: 0,
            acceptor: pid(1),
        });
        assert!(out.is_empty());
        assert!(chosen.is_empty());
        // So are stray Prepare/Accept/Chosen messages.
        assert!(proposer
            .handle(PaxosMsg::Prepare {
                ballot: Ballot::bottom()
            })
            .0
            .is_empty());
    }
}
