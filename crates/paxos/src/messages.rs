//! The Multi-Paxos message vocabulary.

use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;

/// A slot (position) in the replicated log.
pub type Slot = u64;

/// Messages exchanged by the Multi-Paxos state machines.
///
/// The command type `C` is chosen by the embedding protocol (the baseline TCS
/// uses its certification-log entries; a Paxos-backed configuration service
/// would use configuration records).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaxosMsg<C> {
    /// Phase 1a: a proposer asks acceptors to join `ballot`.
    Prepare {
        /// The ballot being prepared.
        ballot: Ballot,
    },
    /// Phase 1b: an acceptor promises not to accept lower ballots and reports
    /// everything it has accepted so far.
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// The acceptor making the promise. Carried explicitly so the
        /// proposer counts *distinct* acceptors — a duplicated or re-sent
        /// promise must not count towards the quorum twice.
        acceptor: ProcessId,
        /// Previously accepted `(slot, ballot, command)` triples.
        accepted: Vec<(Slot, Ballot, C)>,
    },
    /// Phase 2a: the proposer asks acceptors to accept `command` at `slot`.
    Accept {
        /// The proposer's ballot.
        ballot: Ballot,
        /// The log slot.
        slot: Slot,
        /// The proposed command.
        command: C,
    },
    /// Phase 2b: an acceptor acknowledges having accepted `slot` at `ballot`.
    Accepted {
        /// The ballot at which the command was accepted.
        ballot: Ballot,
        /// The log slot.
        slot: Slot,
        /// The acceptor that accepted.
        acceptor: ProcessId,
    },
    /// The proposer announces that `slot` has been chosen (learner
    /// notification).
    Chosen {
        /// The log slot.
        slot: Slot,
        /// The chosen command.
        command: C,
    },
    /// An acceptor refuses a message because it has promised a higher ballot.
    Nack {
        /// The ballot that was refused.
        rejected: Ballot,
        /// The higher ballot the acceptor has promised.
        promised: Ballot,
    },
}

impl<C> PaxosMsg<C> {
    /// A short name for metrics and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            PaxosMsg::Prepare { .. } => "prepare",
            PaxosMsg::Promise { .. } => "promise",
            PaxosMsg::Accept { .. } => "accept",
            PaxosMsg::Accepted { .. } => "accepted",
            PaxosMsg::Chosen { .. } => "chosen",
            PaxosMsg::Nack { .. } => "nack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        let b = Ballot::default();
        assert_eq!(PaxosMsg::<u8>::Prepare { ballot: b }.kind(), "prepare");
        assert_eq!(
            PaxosMsg::<u8>::Promise {
                ballot: b,
                acceptor: ProcessId::new(1),
                accepted: vec![]
            }
            .kind(),
            "promise"
        );
        assert_eq!(
            PaxosMsg::Accept {
                ballot: b,
                slot: 0,
                command: 1u8
            }
            .kind(),
            "accept"
        );
        assert_eq!(
            PaxosMsg::<u8>::Accepted {
                ballot: b,
                slot: 0,
                acceptor: ProcessId::new(1)
            }
            .kind(),
            "accepted"
        );
        assert_eq!(
            PaxosMsg::Chosen {
                slot: 0,
                command: 1u8
            }
            .kind(),
            "chosen"
        );
        assert_eq!(
            PaxosMsg::<u8>::Nack {
                rejected: b,
                promised: b
            }
            .kind(),
            "nack"
        );
    }
}
