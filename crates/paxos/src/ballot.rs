//! Ballot numbers.

use std::fmt;

use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

/// A Paxos ballot: a round number paired with the proposer's identifier, so
/// that ballots of different proposers never collide.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ballot {
    /// The round number (most significant component).
    pub round: u64,
    /// The proposer that owns this ballot.
    pub proposer: ProcessId,
}

impl Ballot {
    /// Creates a ballot.
    pub const fn new(round: u64, proposer: ProcessId) -> Self {
        Ballot { round, proposer }
    }

    /// The smallest possible ballot, below every real ballot.
    pub const fn bottom() -> Self {
        Ballot {
            round: 0,
            proposer: ProcessId::new(0),
        }
    }

    /// The next ballot owned by `proposer` that is strictly greater than
    /// `self`.
    pub fn successor(self, proposer: ProcessId) -> Ballot {
        Ballot {
            round: self.round + 1,
            proposer,
        }
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.proposer.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_round_then_proposer() {
        let p1 = ProcessId::new(1);
        let p2 = ProcessId::new(2);
        assert!(Ballot::new(1, p2) < Ballot::new(2, p1));
        assert!(Ballot::new(1, p1) < Ballot::new(1, p2));
        assert!(Ballot::bottom() <= Ballot::new(0, p1));
    }

    #[test]
    fn successor_is_strictly_greater() {
        let b = Ballot::new(3, ProcessId::new(7));
        let next = b.successor(ProcessId::new(1));
        assert!(next > b);
        assert_eq!(next.round, 4);
        assert_eq!(next.proposer, ProcessId::new(1));
    }

    #[test]
    fn display() {
        assert_eq!(Ballot::new(2, ProcessId::new(5)).to_string(), "b2.5");
    }
}
