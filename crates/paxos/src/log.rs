//! The learner-side replicated log.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::messages::Slot;

/// A learner's view of the replicated log: chosen commands indexed by slot,
/// with a cursor over the contiguous executable prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedLog<C> {
    chosen: BTreeMap<Slot, C>,
    executed_up_to: Slot,
}

impl<C> Default for ReplicatedLog<C> {
    fn default() -> Self {
        ReplicatedLog {
            chosen: BTreeMap::new(),
            executed_up_to: 0,
        }
    }
}

impl<C> ReplicatedLog<C> {
    /// Creates an empty log.
    pub fn new() -> Self {
        ReplicatedLog::default()
    }

    /// Records that `command` was chosen at `slot`. Duplicate notifications
    /// for the same slot are ignored (Paxos guarantees they carry the same
    /// command).
    pub fn record_chosen(&mut self, slot: Slot, command: C) {
        self.chosen.entry(slot).or_insert(command);
    }

    /// The command chosen at `slot`, if known.
    pub fn get(&self, slot: Slot) -> Option<&C> {
        self.chosen.get(&slot)
    }

    /// Iterates over every chosen `(slot, command)` pair in slot order
    /// (including slots beyond the first gap). Used by crash-restart recovery
    /// to replay the durable log into fresh in-memory state.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &C)> + '_ {
        self.chosen.iter().map(|(slot, c)| (*slot, c))
    }

    /// Number of slots known to be chosen.
    pub fn len(&self) -> usize {
        self.chosen.len()
    }

    /// Returns `true` if no slot is known to be chosen.
    pub fn is_empty(&self) -> bool {
        self.chosen.is_empty()
    }

    /// The contiguous prefix of chosen commands starting at slot 0, in slot
    /// order. Commands beyond the first gap are not included.
    pub fn executable_prefix(&self) -> Vec<&C> {
        let mut prefix = Vec::new();
        let mut next = 0;
        while let Some(c) = self.chosen.get(&next) {
            prefix.push(c);
            next += 1;
        }
        prefix
    }

    /// Pops the next commands that are chosen, contiguous and not yet handed
    /// out by a previous call (an execution cursor over
    /// [`ReplicatedLog::executable_prefix`]).
    pub fn take_newly_executable(&mut self) -> Vec<(Slot, &C)> {
        let mut newly = Vec::new();
        let mut next = self.executed_up_to;
        while self.chosen.contains_key(&next) {
            next += 1;
        }
        for slot in self.executed_up_to..next {
            newly.push((slot, self.chosen.get(&slot).expect("checked contiguous")));
        }
        self.executed_up_to = next;
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_stops_at_gaps() {
        let mut log = ReplicatedLog::new();
        log.record_chosen(0, "a");
        log.record_chosen(2, "c");
        assert_eq!(log.executable_prefix(), vec![&"a"]);
        log.record_chosen(1, "b");
        assert_eq!(log.executable_prefix(), vec![&"a", &"b", &"c"]);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.get(2), Some(&"c"));
        assert_eq!(log.get(5), None);
    }

    #[test]
    fn duplicate_chosen_is_ignored() {
        let mut log = ReplicatedLog::new();
        log.record_chosen(0, 1);
        log.record_chosen(0, 2);
        assert_eq!(log.get(0), Some(&1));
    }

    #[test]
    fn execution_cursor_hands_out_each_slot_once() {
        let mut log = ReplicatedLog::new();
        log.record_chosen(0, "a");
        log.record_chosen(1, "b");
        let first: Vec<(Slot, &&str)> = log.take_newly_executable();
        assert_eq!(first.len(), 2);
        assert!(log.take_newly_executable().is_empty());
        log.record_chosen(3, "d");
        assert!(log.take_newly_executable().is_empty(), "gap at slot 2");
        log.record_chosen(2, "c");
        let next = log.take_newly_executable();
        assert_eq!(next.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn empty_log() {
        let log: ReplicatedLog<u8> = ReplicatedLog::new();
        assert!(log.is_empty());
        assert!(log.executable_prefix().is_empty());
    }
}
