//! Multi-Paxos replicated log over `2f + 1` replicas.
//!
//! The paper's baseline ("vanilla") TCS layers two-phase commit over shards
//! that are each replicated with a black-box Paxos-style protocol (§1, §6):
//! every 2PC action is committed to a per-shard replicated log before it takes
//! effect, which costs 7 message delays to learn a decision and places a heavy
//! load on the shard leaders. This crate provides that substrate:
//!
//! * [`Ballot`] — totally ordered ballot numbers (round, proposer);
//! * [`PaxosMsg`] — the message vocabulary (phase-1 prepare/promise, phase-2
//!   accept/accepted, chosen notifications and nacks);
//! * [`Acceptor`] — the acceptor state machine;
//! * [`Proposer`] — a Multi-Paxos proposer/leader that owns a ballot, runs
//!   phase 1 once and then assigns commands to consecutive slots with
//!   phase 2 only;
//! * [`ReplicatedLog`] — a learner that assembles chosen commands into a log
//!   and hands out the contiguous prefix for execution.
//!
//! The state machines are *pure*: each input returns the set of messages to
//! send, so they can be embedded into any transport — the deterministic
//! simulator (`ratc-sim`), threads, or a real network. The baseline TCS
//! (`ratc-baseline`) wraps them into simulation actors; the same machinery can
//! also back a Paxos-replicated configuration service, which is how the paper
//! suggests realising its reliable CS.
//!
//! # Example
//!
//! ```
//! use ratc_paxos::{Acceptor, PaxosMsg, Proposer, ReplicatedLog};
//! use ratc_types::ProcessId;
//!
//! let leader_id = ProcessId::new(0);
//! let acceptor_ids = vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)];
//! let mut proposer: Proposer<&'static str> = Proposer::new(leader_id, acceptor_ids.clone(), 0);
//! let mut acceptors: Vec<Acceptor<&'static str>> =
//!     acceptor_ids.iter().map(|id| Acceptor::new(*id)).collect();
//! let mut log: ReplicatedLog<&'static str> = ReplicatedLog::new();
//!
//! // Run phase 1, then propose a command and deliver messages by hand.
//! let mut outbox: Vec<(ProcessId, PaxosMsg<&'static str>)> = proposer.start_phase1();
//! outbox.extend(proposer.propose("deposit"));
//! while let Some((to, msg)) = outbox.pop() {
//!     for (i, acceptor) in acceptors.iter_mut().enumerate() {
//!         if acceptor_ids[i] == to {
//!             outbox.extend(acceptor.handle(leader_id, msg.clone()));
//!         }
//!     }
//!     if to == leader_id {
//!         let (more, chosen) = proposer.handle(msg.clone());
//!         outbox.extend(more);
//!         for (slot, cmd) in chosen {
//!             log.record_chosen(slot, cmd);
//!         }
//!     }
//! }
//! assert_eq!(log.executable_prefix(), vec![&"deposit"]);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod acceptor;
pub mod ballot;
pub mod log;
pub mod messages;
pub mod proposer;

pub use acceptor::Acceptor;
pub use ballot::Ballot;
pub use log::ReplicatedLog;
pub use messages::PaxosMsg;
pub use proposer::Proposer;

/// Number of replicas needed to tolerate `f` crash failures with Paxos.
pub const fn replicas_for(f: usize) -> usize {
    2 * f + 1
}

/// Majority quorum size among `n` replicas.
pub const fn quorum(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_arithmetic() {
        assert_eq!(replicas_for(1), 3);
        assert_eq!(replicas_for(2), 5);
        assert_eq!(quorum(3), 2);
        assert_eq!(quorum(5), 3);
        assert_eq!(quorum(4), 3);
    }
}
