//! Differential testing of the incremental certification index.
//!
//! `ratc-types` ships two formulations of every certification policy: the
//! paper's *set-based* functions (`f_s`/`g_s` over explicit payload slices)
//! and the *incremental* [`IndexedCertifier`](ratc_types::IndexedCertifier)
//! that `ratc-core`'s `CertificationLog` maintains at phase transitions. The
//! set-based functions are the specification; the index is an optimisation
//! whose soundness rests on distributivity (property (1) of the paper). This
//! module checks the two against each other *vote-for-vote* on randomized
//! certification schedules that exercise everything the protocols can throw
//! at a log:
//!
//! * appends of prepared entries with commit and abort votes,
//! * out-of-order stores that create holes (follower behaviour),
//! * commit and abort decides in random order, including decides of holes,
//! * adversarial decided-commit slots whose vote was abort.
//!
//! The walk is driven by the workspace's deterministic RNG, so every failure
//! is reproducible from its seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use ratc_core::log::{CertificationLog, LogEntry, TxPhase};
use ratc_types::{
    CertificationPolicy, Decision, Key, Payload, Position, ProcessId, ShardId, TxId, Value, Version,
};

/// Statistics of one differential walk, for test-output visibility.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Schedule steps executed.
    pub steps: usize,
    /// Candidate votes compared (several per step).
    pub votes_checked: usize,
    /// Decides applied (commit and abort).
    pub decides: usize,
    /// Holes created by out-of-order stores.
    pub holes_created: usize,
}

/// Draws a random payload over a small key universe (so conflicts actually
/// happen): 1–3 reads, 0–2 writes (each written key is also read), and a
/// commit version in `1..version_bound`.
pub fn random_payload(rng: &mut ChaCha12Rng, key_universe: u32, version_bound: u64) -> Payload {
    let mut builder = Payload::builder();
    let reads = rng.gen_range(1..=3usize);
    let mut read_keys = Vec::new();
    for _ in 0..reads {
        let key = Key::new(format!("k{}", rng.gen_range(0..key_universe)));
        builder = builder.read(key.clone(), Version::new(rng.gen_range(0..version_bound)));
        read_keys.push(key);
    }
    let writes = rng.gen_range(0..=2usize).min(read_keys.len());
    for key in read_keys.into_iter().take(writes) {
        builder = builder.write(key, Value::from("w"));
    }
    builder
        .commit_version(Version::new(rng.gen_range(1..version_bound)))
        .build_unchecked()
}

/// The set-based reference vote for a payload about to occupy `log.next()`:
/// the paper's `f_s(L1, l) ⊓ g_s(L2, l)` computed by scanning the log.
pub fn scan_vote(
    log: &CertificationLog,
    policy: &dyn CertificationPolicy,
    payload: &Payload,
) -> Decision {
    let next = log.next();
    let committed = log.committed_payloads_before(next);
    let prepared = log.prepared_payloads_before(next);
    policy
        .shard_certifier(ShardId::new(0))
        .vote(&committed, &prepared, payload)
}

/// Runs a randomized certification schedule against an indexed log and checks
/// the indexed vote against the set-based reference after every step.
///
/// # Errors
///
/// Returns a description of the first divergence (including the seed and the
/// offending candidate payload), or the walk's statistics on success.
pub fn differential_vote_check(
    policy: &dyn CertificationPolicy,
    seed: u64,
    steps: usize,
) -> Result<DifferentialReport, String> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut log = CertificationLog::with_certifier(policy.indexed_certifier(ShardId::new(0)));
    let mut undecided: Vec<Position> = Vec::new();
    let mut report = DifferentialReport::default();
    let mut next_tx = 1u64;

    for step in 0..steps {
        report.steps += 1;
        match rng.gen_range(0..10u32) {
            // Append a prepared entry (vote commit 4/5 of the time).
            0..=4 => {
                let payload = random_payload(&mut rng, 8, 16);
                let vote = if rng.gen_bool(0.8) {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                let pos = log.append(LogEntry {
                    tx: TxId::new(next_tx),
                    payload,
                    vote,
                    dec: None,
                    phase: TxPhase::Prepared,
                    shards: vec![ShardId::new(0)],
                    client: ProcessId::new(7),
                });
                next_tx += 1;
                undecided.push(pos);
            }
            // Store past the end, creating holes (follower behaviour).
            5 => {
                let skip = rng.gen_range(1..=2u64);
                let pos = Position::new(log.next().as_u64() + skip);
                let payload = random_payload(&mut rng, 8, 16);
                if log.store_at(
                    pos,
                    LogEntry {
                        tx: TxId::new(next_tx),
                        payload,
                        vote: Decision::Commit,
                        dec: None,
                        phase: TxPhase::Prepared,
                        shards: vec![ShardId::new(0)],
                        client: ProcessId::new(7),
                    },
                ) {
                    next_tx += 1;
                    undecided.push(pos);
                    report.holes_created += skip as usize;
                }
            }
            // Decide a random undecided slot, out of order.
            6..=8 if !undecided.is_empty() => {
                let pick = rng.gen_range(0..undecided.len());
                let pos = undecided.swap_remove(pick);
                let decision = if rng.gen_bool(0.7) {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                log.decide(pos, decision);
                report.decides += 1;
            }
            // Decide a hole or an already-decided slot: must be a no-op.
            _ => {
                let pos = Position::new(rng.gen_range(0..(log.len() as u64 + 2)));
                let decision = if rng.gen_bool(0.5) {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                if log.phase(pos) != TxPhase::Prepared {
                    log.decide(pos, decision);
                }
            }
        }

        // After every step, several random candidates must vote identically
        // under the index and under the set-based scans.
        for _ in 0..3 {
            let candidate = random_payload(&mut rng, 8, 16);
            let indexed = log
                .vote_at(log.next(), &candidate)
                .expect("differential log is indexed");
            let reference = scan_vote(&log, policy, &candidate);
            report.votes_checked += 1;
            if indexed != reference {
                return Err(format!(
                    "policy {} diverged at seed {seed} step {step}: indexed {indexed:?} \
                     vs reference {reference:?} for candidate {candidate}",
                    policy.name()
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Serializability, WriteConflict};

    #[test]
    fn serializability_index_agrees_with_reference() {
        for seed in 0..32 {
            let report = differential_vote_check(&Serializability::new(), seed, 120)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(report.votes_checked >= 360);
        }
    }

    #[test]
    fn write_conflict_index_agrees_with_reference() {
        for seed in 0..32 {
            let report = differential_vote_check(&WriteConflict::new(), seed, 120)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(report.votes_checked >= 360);
        }
    }

    #[test]
    fn mirror_fallback_agrees_with_reference() {
        use std::sync::Arc;
        /// A policy that does not override `indexed_certifier`, exercising the
        /// `MirrorCertifier` default through the same schedules.
        #[derive(Debug)]
        struct Plain;
        impl CertificationPolicy for Plain {
            fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
                Serializability::new().certify(committed, payload)
            }
            fn shard_certifier(&self, shard: ShardId) -> Arc<dyn ratc_types::ShardCertifier> {
                Serializability::new().shard_certifier(shard)
            }
            fn name(&self) -> &'static str {
                "plain-serializability"
            }
        }
        for seed in 0..8 {
            differential_vote_check(&Plain, seed, 80).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn random_payloads_stay_in_universe() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..100 {
            let p = random_payload(&mut rng, 4, 8);
            assert!(p.read_count() >= 1);
            for (key, _) in p.writes() {
                assert!(p.reads_key(key), "writes must be read");
            }
        }
    }
}
