//! End-to-end conflict-serializability check over committed transactions.
//!
//! The paper's §2 argues that a history produced by an optimistic execution
//! layer on top of a TCS correct for certification function (2) is
//! serializable. This module provides the corresponding end-to-end check used
//! by the key-value store examples: build the conflict graph over *committed*
//! transactions (write→read, write→write and read→write edges derived from
//! versions) and verify it is acyclic.

use std::collections::{BTreeMap, BTreeSet};

use ratc_types::{Key, TcsHistory, TxId, Version};

/// Checks conflict serializability of the committed transactions of `history`.
///
/// Edges are derived from versions: if transaction `a` wrote version `v` of a
/// key and transaction `b` read version `v` of the same key, then `a → b`
/// (write-read). If `a` read or wrote a version lower than the commit version
/// of `b`'s write to the same key, then `a → b` as well (read-write /
/// write-write in version order). The committed history is serializable iff
/// the resulting graph is acyclic.
///
/// Returns `Ok(order)` with a valid serialization order, or `Err(cycle)` with
/// transactions participating in a cycle.
pub fn check_conflict_serializable(history: &TcsHistory) -> Result<Vec<TxId>, Vec<TxId>> {
    let committed: Vec<TxId> = history.committed().collect();
    let committed_set: BTreeSet<TxId> = committed.iter().copied().collect();

    // writer_of[key][version] = transaction that committed that version.
    let mut writer_of: BTreeMap<&Key, BTreeMap<Version, TxId>> = BTreeMap::new();
    for tx in &committed {
        let payload = history.payload(*tx).expect("committed implies certified");
        for (key, _) in payload.writes() {
            writer_of
                .entry(key)
                .or_default()
                .insert(payload.commit_version(), *tx);
        }
    }

    // Build edges.
    let mut edges: BTreeMap<TxId, BTreeSet<TxId>> = BTreeMap::new();
    let mut add_edge = |from: TxId, to: TxId| {
        if from != to {
            edges.entry(from).or_default().insert(to);
        }
    };
    for tx in &committed {
        let payload = history.payload(*tx).expect("committed implies certified");
        for (key, read_version) in payload.reads() {
            if let Some(versions) = writer_of.get(key) {
                // write-read: the writer of the version we read precedes us.
                if let Some(writer) = versions.get(&read_version) {
                    if committed_set.contains(writer) {
                        add_edge(*writer, *tx);
                    }
                }
                // read-write: writers of later versions come after us.
                for (version, writer) in versions {
                    if *version > read_version && committed_set.contains(writer) {
                        add_edge(*tx, *writer);
                    }
                }
            }
        }
        // write-write: version order orders the writers.
        for (key, _) in payload.writes() {
            if let Some(versions) = writer_of.get(key) {
                for (version, writer) in versions {
                    if *version > payload.commit_version() && committed_set.contains(writer) {
                        add_edge(*tx, *writer);
                    }
                }
            }
        }
    }

    topological_sort(&committed, &edges)
}

/// Kahn's algorithm; on a cycle, returns the residual nodes.
fn topological_sort(
    nodes: &[TxId],
    edges: &BTreeMap<TxId, BTreeSet<TxId>>,
) -> Result<Vec<TxId>, Vec<TxId>> {
    let mut in_degree: BTreeMap<TxId, usize> = nodes.iter().map(|n| (*n, 0)).collect();
    for targets in edges.values() {
        for target in targets {
            if let Some(d) = in_degree.get_mut(target) {
                *d += 1;
            }
        }
    }
    let mut ready: Vec<TxId> = in_degree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut order = Vec::new();
    while let Some(node) = ready.pop() {
        order.push(node);
        if let Some(targets) = edges.get(&node) {
            for target in targets {
                if let Some(d) = in_degree.get_mut(target) {
                    *d -= 1;
                    if *d == 0 {
                        ready.push(*target);
                    }
                }
            }
        }
    }
    if order.len() == nodes.len() {
        Ok(order)
    } else {
        let ordered: BTreeSet<TxId> = order.into_iter().collect();
        Err(nodes
            .iter()
            .copied()
            .filter(|n| !ordered.contains(n))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Decision, Payload, Value};

    fn commit(h: &mut TcsHistory, tx: u64, payload: Payload) {
        h.record_certify(TxId::new(tx), payload).unwrap();
        h.record_decide(TxId::new(tx), Decision::Commit).unwrap();
    }

    #[test]
    fn chain_of_dependent_writes_is_serializable() {
        let mut h = TcsHistory::new();
        commit(
            &mut h,
            1,
            Payload::builder()
                .read(Key::new("x"), Version::new(0))
                .write(Key::new("x"), Value::from("1"))
                .commit_version(Version::new(1))
                .build()
                .unwrap(),
        );
        commit(
            &mut h,
            2,
            Payload::builder()
                .read(Key::new("x"), Version::new(1))
                .write(Key::new("x"), Value::from("2"))
                .commit_version(Version::new(2))
                .build()
                .unwrap(),
        );
        let order = check_conflict_serializable(&h).expect("serializable");
        let pos1 = order.iter().position(|t| *t == TxId::new(1)).unwrap();
        let pos2 = order.iter().position(|t| *t == TxId::new(2)).unwrap();
        assert!(pos1 < pos2);
    }

    #[test]
    fn lost_update_cycle_is_detected() {
        let mut h = TcsHistory::new();
        // Both read version 0 of each other's keys and write their own key:
        // t1 reads x,y writes x; t2 reads x,y writes y. Classic write-skew-like
        // cycle: t1 → t2 (t2 must come after t1's write? ) — construct a true
        // cycle: t1 reads y@0 and writes x@1; t2 reads x@0 and writes y@1.
        commit(
            &mut h,
            1,
            Payload::builder()
                .read(Key::new("x"), Version::new(0))
                .read(Key::new("y"), Version::new(0))
                .write(Key::new("x"), Value::from("1"))
                .commit_version(Version::new(1))
                .build()
                .unwrap(),
        );
        commit(
            &mut h,
            2,
            Payload::builder()
                .read(Key::new("x"), Version::new(0))
                .read(Key::new("y"), Version::new(0))
                .write(Key::new("y"), Value::from("1"))
                .commit_version(Version::new(1))
                .build()
                .unwrap(),
        );
        // t1 read y@0 but t2 wrote y@1 → t1 before t2; t2 read x@0 but t1
        // wrote x@1 → t2 before t1: a cycle.
        let err = check_conflict_serializable(&h).unwrap_err();
        assert_eq!(err.len(), 2);
    }

    #[test]
    fn aborted_transactions_are_ignored() {
        let mut h = TcsHistory::new();
        commit(
            &mut h,
            1,
            Payload::builder()
                .read(Key::new("x"), Version::new(0))
                .write(Key::new("x"), Value::from("1"))
                .commit_version(Version::new(1))
                .build()
                .unwrap(),
        );
        h.record_certify(
            TxId::new(2),
            Payload::builder()
                .read(Key::new("x"), Version::new(0))
                .write(Key::new("x"), Value::from("2"))
                .commit_version(Version::new(2))
                .build()
                .unwrap(),
        )
        .unwrap();
        h.record_decide(TxId::new(2), Decision::Abort).unwrap();
        assert!(check_conflict_serializable(&h).is_ok());
    }

    #[test]
    fn empty_history_is_serializable() {
        let h = TcsHistory::new();
        assert_eq!(check_conflict_serializable(&h).unwrap().len(), 0);
    }
}
