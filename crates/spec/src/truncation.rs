//! Differential testing of checkpointed log truncation.
//!
//! `ratc-core`'s `CertificationLog` can fold a fully-decided, hole-free
//! prefix into a `Checkpoint` and free the physical slots
//! (`CertificationLog::truncate_to`). Truncation must be *observationally
//! invisible* to certification: a truncating log and an untruncated mirror
//! replaying the same schedule must agree, at every step, on
//!
//! * the leader's vote for any candidate payload (`vote_at`),
//! * the position of every transaction ever logged (`position_of`),
//! * the identity and final decision visible at every position
//!   (`slot_identity`), and
//! * the decided frontier.
//!
//! The walk reuses the randomized schedule generator of [`crate::indexed`]
//! (appends, out-of-order stores creating holes, out-of-order commit/abort
//! decides) and additionally truncates the log at its decided frontier at
//! random points. Every failure is reproducible from its seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use ratc_core::log::{CertificationLog, LogEntry, TxPhase};
use ratc_types::{CertificationPolicy, Decision, Position, ProcessId, ShardId, TxId};

use crate::indexed::random_payload;

/// Statistics of one truncation differential walk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TruncationReport {
    /// Schedule steps executed.
    pub steps: usize,
    /// Candidate votes compared (several per step).
    pub votes_checked: usize,
    /// `position_of` probes compared.
    pub positions_checked: usize,
    /// Truncations that actually freed slots.
    pub truncations: usize,
    /// Total physical slots freed.
    pub slots_freed: usize,
    /// Maximum retained slot count observed on the truncating log.
    pub max_retained: usize,
}

/// Replays a randomized certification schedule on a *truncating* log and an
/// *untruncated mirror*, checking after every step that votes, positions,
/// slot identities and frontiers agree (see the module docs).
///
/// # Errors
///
/// Returns a description of the first divergence (including the seed), or
/// the walk's statistics on success.
pub fn differential_truncation_check(
    policy: &dyn CertificationPolicy,
    seed: u64,
    steps: usize,
) -> Result<TruncationReport, String> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let shard = ShardId::new(0);
    let mut truncating = CertificationLog::with_certifier(policy.indexed_certifier(shard));
    let mut mirror = CertificationLog::with_certifier(policy.indexed_certifier(shard));
    let mut undecided: Vec<Position> = Vec::new();
    let mut all_txs: Vec<TxId> = Vec::new();
    let mut report = TruncationReport::default();
    let mut next_tx = 1u64;

    let make_entry = |rng: &mut ChaCha12Rng, tx: u64| LogEntry {
        tx: TxId::new(tx),
        payload: random_payload(rng, 8, 16),
        vote: if rng.gen_bool(0.8) {
            Decision::Commit
        } else {
            Decision::Abort
        },
        dec: None,
        phase: TxPhase::Prepared,
        shards: vec![shard],
        client: ProcessId::new(7),
    };

    for step in 0..steps {
        report.steps += 1;
        match rng.gen_range(0..12u32) {
            // Append a prepared entry to both logs.
            0..=4 => {
                let entry = make_entry(&mut rng, next_tx);
                all_txs.push(entry.tx);
                next_tx += 1;
                let pos = truncating.append(entry.clone());
                let mirror_pos = mirror.append(entry);
                if pos != mirror_pos {
                    return Err(format!(
                        "seed {seed} step {step}: append positions diverged ({pos} vs {mirror_pos})"
                    ));
                }
                undecided.push(pos);
            }
            // Store past the end, creating holes (follower behaviour).
            5 => {
                let skip = rng.gen_range(1..=2u64);
                let pos = Position::new(truncating.next().as_u64() + skip);
                let entry = make_entry(&mut rng, next_tx);
                let stored = truncating.store_at(pos, entry.clone());
                let mirrored = mirror.store_at(pos, entry.clone());
                if stored != mirrored {
                    return Err(format!(
                        "seed {seed} step {step}: store_at({pos}) diverged ({stored} vs {mirrored})"
                    ));
                }
                if stored {
                    all_txs.push(entry.tx);
                    next_tx += 1;
                    undecided.push(pos);
                }
            }
            // Decide a random undecided slot, out of order.
            6..=8 if !undecided.is_empty() => {
                let pick = rng.gen_range(0..undecided.len());
                let pos = undecided.swap_remove(pick);
                let decision = if rng.gen_bool(0.7) {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                truncating.decide(pos, decision);
                mirror.decide(pos, decision);
            }
            // Truncate at (or past) the decided frontier — the mirror never
            // truncates. Occasionally ask for a stale floor below the
            // frontier to exercise the partial fold.
            9..=10 => {
                let frontier = truncating.decided_frontier();
                let target = if rng.gen_bool(0.3) {
                    Position::new(rng.gen_range(0..=frontier.as_u64()))
                } else {
                    Position::new(frontier.as_u64() + rng.gen_range(0..3u64))
                };
                let freed = truncating.truncate_to(target);
                if freed > 0 {
                    report.truncations += 1;
                    report.slots_freed += freed;
                }
            }
            // Decide a hole, an already-decided or a truncated slot: must be
            // a no-op on both logs.
            _ => {
                let pos = Position::new(rng.gen_range(0..(truncating.next().as_u64() + 2)));
                let decision = if rng.gen_bool(0.5) {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                if truncating.phase(pos) != TxPhase::Prepared {
                    truncating.decide(pos, decision);
                    mirror.decide(pos, decision);
                }
            }
        }
        report.max_retained = report.max_retained.max(truncating.len());

        // Structural agreement.
        if truncating.next() != mirror.next() {
            return Err(format!(
                "seed {seed} step {step}: next diverged ({} vs {})",
                truncating.next(),
                mirror.next()
            ));
        }
        if truncating.decided_frontier() != mirror.decided_frontier() {
            return Err(format!(
                "seed {seed} step {step}: decided frontier diverged ({} vs {})",
                truncating.decided_frontier(),
                mirror.decided_frontier()
            ));
        }

        // Vote agreement on random candidates.
        for _ in 0..3 {
            let candidate = random_payload(&mut rng, 8, 16);
            let lhs = truncating
                .vote_at(truncating.next(), &candidate)
                .expect("truncating log is indexed");
            let rhs = mirror
                .vote_at(mirror.next(), &candidate)
                .expect("mirror log is indexed");
            report.votes_checked += 1;
            if lhs != rhs {
                return Err(format!(
                    "policy {} diverged at seed {seed} step {step}: truncating {lhs:?} vs \
                     mirror {rhs:?} for candidate {candidate} (base {})",
                    policy.name(),
                    truncating.base()
                ));
            }
        }

        // position_of and slot-identity agreement over the whole history
        // (sampled: the newest few plus random older transactions).
        let probes = all_txs.len().min(4);
        for i in 0..probes {
            let tx = if i < 2 && all_txs.len() >= 2 {
                all_txs[all_txs.len() - 1 - i]
            } else {
                all_txs[rng.gen_range(0..all_txs.len())]
            };
            report.positions_checked += 1;
            let lhs = truncating.position_of(tx);
            let rhs = mirror.position_of(tx);
            if lhs != rhs {
                return Err(format!(
                    "seed {seed} step {step}: position_of({tx}) diverged ({lhs:?} vs {rhs:?})"
                ));
            }
            if let Some(pos) = lhs {
                let lhs_id = truncating.slot_identity(pos);
                let rhs_id = mirror.slot_identity(pos);
                if lhs_id != rhs_id {
                    return Err(format!(
                        "seed {seed} step {step}: slot_identity({pos}) diverged \
                         ({lhs_id:?} vs {rhs_id:?})"
                    ));
                }
            }
        }

        // The truncating log must remain a (checkpoint-aware) prefix of the
        // mirror and vice versa.
        if !truncating.is_prefix_with_holes_of(&mirror, mirror.next())
            || !mirror.is_prefix_with_holes_of(&truncating, truncating.next())
        {
            return Err(format!(
                "seed {seed} step {step}: prefix-with-holes relation broken at base {}",
                truncating.base()
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Serializability, WriteConflict};

    #[test]
    fn serializability_truncating_log_agrees_with_mirror() {
        let mut truncations = 0;
        for seed in 0..24 {
            let report = differential_truncation_check(&Serializability::new(), seed, 150)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(report.votes_checked >= 450);
            truncations += report.truncations;
        }
        assert!(truncations > 0, "the walks never truncated anything");
    }

    #[test]
    fn write_conflict_truncating_log_agrees_with_mirror() {
        let mut truncations = 0;
        for seed in 0..24 {
            let report = differential_truncation_check(&WriteConflict::new(), seed, 150)
                .unwrap_or_else(|e| panic!("{e}"));
            truncations += report.truncations;
        }
        assert!(truncations > 0, "the walks never truncated anything");
    }

    /// Acceptance: a 100k-transaction history with periodic truncation keeps
    /// the retained slot count bounded by the undecided window (< 1k slots),
    /// while votes and positions keep agreeing with an untruncated mirror.
    #[test]
    fn hundred_thousand_transactions_with_bounded_retained_slots() {
        let policy = Serializability::new();
        let shard = ShardId::new(0);
        let mut truncating = CertificationLog::with_certifier(policy.indexed_certifier(shard));
        let mut mirror = CertificationLog::with_certifier(policy.indexed_certifier(shard));
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let total = 100_000u64;
        // Decisions trail appends by a jittered window, as in a live shard.
        let mut decide_upto = 0u64;
        let mut max_retained = 0usize;
        for i in 0..total {
            let entry = LogEntry {
                tx: TxId::new(i + 1),
                payload: random_payload(&mut rng, 64, 1 << 20),
                vote: Decision::Commit,
                dec: None,
                phase: TxPhase::Prepared,
                shards: vec![shard],
                client: ProcessId::new(7),
            };
            truncating.append(entry.clone());
            mirror.append(entry);
            // Decide everything up to a trailing point.
            let window = rng.gen_range(1..64u64);
            while decide_upto + window <= i + 1 {
                let decision = if rng.gen_bool(0.9) {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                truncating.decide(Position::new(decide_upto), decision);
                mirror.decide(Position::new(decide_upto), decision);
                decide_upto += 1;
            }
            // Truncate in batches of 256 decided slots.
            if truncating.decided_frontier().as_u64() >= truncating.base().as_u64() + 256 {
                truncating.truncate_to(truncating.decided_frontier());
            }
            max_retained = max_retained.max(truncating.len());
            // Sparse differential probes keep the test fast.
            if i % 5_000 == 0 {
                let candidate = random_payload(&mut rng, 64, 1 << 20);
                assert_eq!(
                    truncating.vote_at(truncating.next(), &candidate),
                    mirror.vote_at(mirror.next(), &candidate),
                    "vote diverged at tx {i}"
                );
                let probe = TxId::new(rng.gen_range(0..i + 1) + 1);
                assert_eq!(
                    truncating.position_of(probe),
                    mirror.position_of(probe),
                    "position diverged at tx {i}"
                );
            }
        }
        assert_eq!(truncating.next().as_u64(), total);
        assert!(
            max_retained < 1_000,
            "peak retained slots {max_retained} not bounded by the undecided window"
        );
        assert!(truncating.base().as_u64() > total - 1_000);
        // Every decision of the truncated history survives in the checkpoint.
        assert_eq!(
            truncating.checkpoint().decided_count() as u64,
            truncating.base().as_u64()
        );
        // Final full agreement on fresh candidates.
        for _ in 0..32 {
            let candidate = random_payload(&mut rng, 64, 1 << 20);
            assert_eq!(
                truncating.vote_at(truncating.next(), &candidate),
                mirror.vote_at(mirror.next(), &candidate)
            );
        }
    }
}
