//! Specification checkers for the Transaction Certification Service.
//!
//! The paper specifies a TCS through histories (§2): a history is correct with
//! respect to a certification function `f` if the projection to committed
//! transactions has a *legal linearization* — a sequential arrangement,
//! consistent with real-time order, in which every decision equals `f` applied
//! to the payloads of the previously committed transactions. Appendix A
//! additionally introduces a lower-level specification, TCS-LL (Figure 6),
//! whose constraints talk about per-shard certification positions and votes.
//!
//! This crate provides executable versions of both:
//!
//! * [`correctness`] — black-box history checking against `f`
//!   ([`correctness::check_history`]), usable with the history recorded by any
//!   TCS implementation in the workspace (`ratc-core`, `ratc-rdma`,
//!   `ratc-baseline`);
//! * [`tcsll`] — the TCS-LL constraint checker over extracted per-shard
//!   certification data;
//! * [`serializability`] — an end-to-end conflict-serializability check over
//!   committed read/write payloads, used by the key-value store examples;
//! * [`indexed`] — differential testing of the incremental certification
//!   index against the paper's set-based certification functions;
//! * [`truncation`] — differential testing of checkpointed log truncation:
//!   a truncating log must agree vote-for-vote (and position-for-position)
//!   with an untruncated mirror on randomized schedules;
//! * [`batching`] — differential testing of the batched certification
//!   pipeline: a batched and an unbatched cluster replaying the same
//!   workload must produce identical histories, votes and certification
//!   orders, including runs interleaved with truncation and
//!   reconfiguration;
//! * [`chaos`] — safety and liveness verdicts for fault-injection (chaos
//!   nemesis) runs: the history must stay spec-conformant under crashes,
//!   restarts, message loss/duplication/reordering and partitions, and every
//!   submitted transaction must be decided once faults lift;
//! * [`conformance`] — the trait-conformance suite of the unified
//!   `ratc-harness::TcsCluster` facade: one generic driver instantiated for
//!   all three stacks, asserting identical observable semantics for
//!   submit/decide, coordinator handoff, crash/restart and reconfiguration
//!   on a fixed seeded workload.
//!
//! These are runtime checkers, not proofs: they are run over every simulated
//! execution produced by the test suites, the property-based tests and the
//! experiment harnesses, including executions with crashes and
//! reconfigurations.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod batching;
pub mod chaos;
pub mod conformance;
pub mod correctness;
pub mod indexed;
pub mod serializability;
pub mod tcsll;
pub mod truncation;

pub use batching::{differential_batching_check, BatchingReport, BatchingScenario};
pub use chaos::{check_chaos_run, check_liveness, ChaosVerdict};
pub use conformance::{check_conformance, ConformanceReport};
pub use correctness::{check_history, SpecViolation};
pub use indexed::{differential_vote_check, DifferentialReport};
pub use serializability::check_conflict_serializable;
pub use tcsll::{ShardCertificationData, TcsLlViolation};
pub use truncation::{differential_truncation_check, TruncationReport};
