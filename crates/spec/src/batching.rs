//! Differential testing of the batched certification pipeline.
//!
//! Batching (`ratc_core::batch`) is pure transport-level coalescing: a batch
//! carries the same per-transaction payloads, votes and decisions the
//! unbatched exchange would, and a leader certifies a batch in submission
//! order. Replaying the *same* randomized workload through two clusters —
//! one with batching disabled, one with a batch size — must therefore
//! produce, at quiescence:
//!
//! * the **same history**: every transaction gets the same commit/abort
//!   decision in both runs;
//! * the **same certification order**: every shard leader's log assigns the
//!   same position to the same transaction, with the same vote and payload
//!   (compared checkpoint-aware, so runs interleaved with truncation are
//!   covered);
//! * no specification violations in either run.
//!
//! The determinism argument: both runs submit through one fixed coordinator,
//! and the network is FIFO per channel, so each shard leader receives the
//! coordinator's prepares — batched or not — in submission order and
//! certifies them in that order. The walks randomize payload contention,
//! batch sizes and wave pacing, and optionally interleave checkpointed
//! truncation and a crash-plus-reconfiguration at a wave boundary. Every
//! failure is reproducible from its seed.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use ratc_core::batch::BatchingConfig;
use ratc_core::harness::Cluster;
use ratc_core::replica::TruncationConfig;
use ratc_harness::{ClusterSpec, StackKind};
use ratc_types::{Payload, ShardId, TxId};

use crate::indexed::random_payload;

/// One randomized batching-equivalence scenario.
#[derive(Debug, Clone)]
pub struct BatchingScenario {
    /// RNG seed (drives payloads, pacing and the simulated network).
    pub seed: u64,
    /// Number of shards in both deployments.
    pub shards: u32,
    /// Transactions submitted.
    pub tx_count: usize,
    /// Batch size of the batched run (the reference run never batches).
    pub batch: usize,
    /// Whether the batched run uses *adaptive* batching
    /// ([`BatchingConfig::adaptive`] up to `batch`) instead of a fixed
    /// threshold.
    ///
    /// Adaptive batching preserves per-leader submission order but re-times
    /// flushes, and votes are interleaving-sensitive: an abort decision
    /// releases the loser's writes from the certification index, so a
    /// certification delayed past a same-wave abort can legitimately flip
    /// commit. The differential is stated over runs with *identical*
    /// certification/decision interleaving — the fixed-batch scenarios
    /// guarantee it by submitting exactly one batch per wave, the adaptive
    /// scenarios by pinning the trailing-flush delay below the minimum
    /// network latency, so every partial flush lands before any same-wave
    /// decision.
    pub adaptive: bool,
    /// Checkpointed-truncation fold batch, or `None` to disable truncation.
    pub truncation_batch: Option<u64>,
    /// Whether to crash a shard-0 follower and reconfigure mid-run (at a
    /// quiescent wave boundary, so both runs reconfigure identically).
    pub reconfigure: bool,
}

/// Statistics of one batching differential walk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchingReport {
    /// Transactions decided (in each run).
    pub decided: usize,
    /// `PREPARE_BATCH` messages the batched run actually sent.
    pub batches_sent: u64,
    /// Log slots compared position-for-position across the two runs.
    pub slots_compared: usize,
}

fn build_cluster(scenario: &BatchingScenario, batching: BatchingConfig) -> Cluster {
    let truncation = match scenario.truncation_batch {
        Some(batch) => TruncationConfig::with_batch(batch),
        None => TruncationConfig::disabled(),
    };
    // Built from the unified spec, but as the *concrete* core cluster: the
    // differential below compares per-slot log state, which is white-box.
    ClusterSpec::new(StackKind::Core)
        .with_shards(scenario.shards)
        .with_seed(scenario.seed)
        .with_truncation(truncation)
        .with_batching(batching)
        .build_core()
}

/// Replays one scenario through an unbatched and a batched cluster and
/// checks history and per-shard log equivalence (see the module docs).
///
/// # Errors
///
/// Returns a description of the first divergence, or of an invalid scenario
/// (always including the seed); the walk's statistics on success.
pub fn differential_batching_check(scenario: &BatchingScenario) -> Result<BatchingReport, String> {
    let seed = scenario.seed;
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let txs: Vec<(TxId, Payload)> = (0..scenario.tx_count)
        .map(|i| (TxId::new(i as u64 + 1), random_payload(&mut rng, 12, 16)))
        .collect();
    let wave = scenario.batch.max(2);
    let reconfig_wave = txs.len() / wave / 2;
    // The fixed coordinator lives in the highest shard; the reconfigure
    // branch crashes a shard-0 follower. With a single shard those coincide
    // and the walk would crash its own coordinator — an artifact of the
    // harness, not a batching divergence.
    if scenario.reconfigure && scenario.shards < 2 {
        return Err(format!(
            "seed {seed}: invalid scenario — reconfigure needs >= 2 shards \
             (the coordinator must survive the crash)"
        ));
    }

    let mut unbatched = build_cluster(scenario, BatchingConfig::disabled());
    let batched_config = if scenario.adaptive {
        // The 1 us trailing-flush delay keeps the interleaving identical to
        // the unbatched reference (see `BatchingScenario::adaptive`).
        BatchingConfig::adaptive(scenario.batch)
            .with_delay(ratc_core::batch::SimDuration::from_micros(1))
    } else {
        BatchingConfig::with_batch(scenario.batch)
    };
    let mut batched = build_cluster(scenario, batched_config);
    // One fixed coordinator (a shard-1 member when available, so it is never
    // a member of the reconfigured shard 0): certifies reach every leader in
    // submission order in both runs.
    let coordinator_shard = ShardId::new(scenario.shards.saturating_sub(1));
    if unbatched.initial_members(coordinator_shard).len() < 2 {
        return Err(format!(
            "seed {seed}: invalid scenario — shard {coordinator_shard} needs a \
             non-leader member to coordinate from"
        ));
    }
    let coord_a = unbatched.initial_members(coordinator_shard)[1];
    let coord_b = batched.initial_members(coordinator_shard)[1];

    for (wave_idx, chunk) in txs.chunks(wave).enumerate() {
        for (tx, payload) in chunk {
            unbatched.submit_via(*tx, payload.clone(), coord_a);
            batched.submit_via(*tx, payload.clone(), coord_b);
        }
        unbatched.run_to_quiescence();
        batched.run_to_quiescence();
        if scenario.reconfigure && wave_idx == reconfig_wave {
            let shard = ShardId::new(0);
            for cluster in [&mut unbatched, &mut batched] {
                let leader = cluster.current_leader(shard);
                let follower = *cluster
                    .initial_members(shard)
                    .iter()
                    .find(|p| **p != leader)
                    .expect("follower");
                cluster.crash(follower);
                cluster.start_reconfiguration(shard, leader, vec![follower]);
                cluster.run_to_quiescence();
            }
        }
    }

    // History equivalence: identical decision for every transaction.
    let history_a = unbatched.history();
    let history_b = batched.history();
    let mut report = BatchingReport {
        decided: history_a.decide_count(),
        batches_sent: batched.world.metrics().counter("prepare_batches_sent"),
        slots_compared: 0,
    };
    if history_a.decide_count() != history_b.decide_count() {
        return Err(format!(
            "seed {seed}: decided counts diverged ({} unbatched vs {} batched)",
            history_a.decide_count(),
            history_b.decide_count()
        ));
    }
    for (tx, _) in &txs {
        let da = history_a.decision(*tx);
        let db = history_b.decision(*tx);
        if da != db {
            return Err(format!(
                "seed {seed}: decision of {tx} diverged ({da:?} unbatched vs {db:?} batched)"
            ));
        }
    }
    if !unbatched.client_violations().is_empty() || !batched.client_violations().is_empty() {
        return Err(format!(
            "seed {seed}: specification violations (unbatched {:?}, batched {:?})",
            unbatched.client_violations(),
            batched.client_violations()
        ));
    }

    // Certification-order equivalence at every shard leader, checkpoint-aware
    // (truncation frontiers may differ between the runs; identities and
    // decisions must not).
    for shard in unbatched.shards() {
        let leader_a = unbatched.current_leader(shard);
        let leader_b = batched.current_leader(shard);
        let log_a = unbatched.replica(leader_a).log();
        let log_b = batched.replica(leader_b).log();
        if log_a.next() != log_b.next() {
            return Err(format!(
                "seed {seed} shard {shard}: log lengths diverged ({} vs {})",
                log_a.next(),
                log_b.next()
            ));
        }
        for raw in 0..log_a.next().as_u64() {
            let pos = ratc_types::Position::new(raw);
            report.slots_compared += 1;
            let id_a = log_a.slot_identity(pos);
            let id_b = log_b.slot_identity(pos);
            if id_a != id_b {
                return Err(format!(
                    "seed {seed} shard {shard} slot {pos}: identity diverged ({id_a:?} vs {id_b:?})"
                ));
            }
            // Where both runs still retain the slot, votes and payloads must
            // match verbatim.
            if let (Some(entry_a), Some(entry_b)) = (log_a.get(pos), log_b.get(pos)) {
                if entry_a.vote != entry_b.vote || entry_a.payload != entry_b.payload {
                    return Err(format!(
                        "seed {seed} shard {shard} slot {pos}: vote/payload diverged \
                         ({:?} vs {:?})",
                        entry_a.vote, entry_b.vote
                    ));
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn batched_runs_produce_identical_histories() {
        let mut batches = 0;
        for seed in 0..8u64 {
            let mut rng = ChaCha12Rng::seed_from_u64(seed.wrapping_mul(977));
            let scenario = BatchingScenario {
                seed,
                shards: 2,
                tx_count: 48,
                batch: rng.gen_range(2..=8),
                adaptive: false,
                truncation_batch: None,
                reconfigure: false,
            };
            let report = differential_batching_check(&scenario).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.decided, 48);
            assert!(report.slots_compared > 0);
            batches += report.batches_sent;
        }
        assert!(batches > 0, "the batched runs never batched anything");
    }

    #[test]
    fn batches_interleaved_with_truncation_stay_equivalent() {
        for seed in 0..6u64 {
            let scenario = BatchingScenario {
                seed: seed + 100,
                shards: 2,
                tx_count: 64,
                batch: 8,
                adaptive: false,
                truncation_batch: Some(8),
                reconfigure: false,
            };
            let report = differential_batching_check(&scenario).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.decided, 64);
        }
    }

    #[test]
    fn batches_interleaved_with_reconfiguration_stay_equivalent() {
        for seed in 0..4u64 {
            let scenario = BatchingScenario {
                seed: seed + 200,
                shards: 2,
                tx_count: 48,
                batch: 6,
                adaptive: false,
                truncation_batch: Some(8),
                reconfigure: true,
            };
            let report = differential_batching_check(&scenario).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.decided, 48);
        }
    }

    /// Adaptive batching is re-timing only: replaying the same seeded
    /// workload through an adaptive cluster and the unbatched reference
    /// (and, transitively, the fixed-batch runs above, which share that
    /// reference) externalises identical histories and leader logs.
    #[test]
    fn adaptive_runs_produce_identical_histories() {
        let mut batches = 0;
        for seed in 0..8u64 {
            let mut rng = ChaCha12Rng::seed_from_u64(seed.wrapping_mul(1973));
            let scenario = BatchingScenario {
                seed: seed + 300,
                shards: 2,
                tx_count: 48,
                batch: rng.gen_range(2..=16),
                adaptive: true,
                truncation_batch: None,
                reconfigure: false,
            };
            let report = differential_batching_check(&scenario).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.decided, 48);
            assert!(report.slots_compared > 0);
            batches += report.batches_sent;
        }
        assert!(batches > 0, "the adaptive runs never batched anything");
    }

    #[test]
    fn adaptive_batches_interleaved_with_truncation_stay_equivalent() {
        for seed in 0..6u64 {
            let scenario = BatchingScenario {
                seed: seed + 400,
                shards: 2,
                tx_count: 64,
                batch: 8,
                adaptive: true,
                truncation_batch: Some(8),
                reconfigure: false,
            };
            let report = differential_batching_check(&scenario).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.decided, 64);
        }
    }

    #[test]
    fn adaptive_batches_interleaved_with_reconfiguration_stay_equivalent() {
        for seed in 0..4u64 {
            let scenario = BatchingScenario {
                seed: seed + 500,
                shards: 2,
                tx_count: 48,
                batch: 6,
                adaptive: true,
                truncation_batch: Some(8),
                reconfigure: true,
            };
            let report = differential_batching_check(&scenario).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.decided, 48);
        }
    }
}
