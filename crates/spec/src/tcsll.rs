//! The TCS-LL constraint checker (Figure 6 of the paper).
//!
//! TCS-LL is the low-level specification the protocol is proved against in
//! Appendix A: for every transaction and every shard that certifies it there
//! must exist a certification position `pos_s[t]`, a shard vote `d_s[t]` and a
//! stored payload `pload_s[t]` satisfying constraints (6)–(13). The data is
//! white-box (it lives in the replicas' certification logs); experiment
//! drivers extract it with [`ShardCertificationData`] and run
//! [`check_tcsll`] over it together with the client-observed history.

use std::collections::BTreeMap;
use std::fmt;

use ratc_types::{Decision, Payload, Position, ShardId, TcsHistory, TxId};

/// Per-shard certification data extracted from a shard's (final) certification
/// log: for each position, the transaction, its stored payload and its vote.
#[derive(Debug, Clone, Default)]
pub struct ShardCertificationData {
    entries: BTreeMap<TxId, (Position, Payload, Decision)>,
}

impl ShardCertificationData {
    /// Creates an empty data set.
    pub fn new() -> Self {
        ShardCertificationData::default()
    }

    /// Records that `tx` occupies `pos` with `payload` and `vote`.
    pub fn record(&mut self, tx: TxId, pos: Position, payload: Payload, vote: Decision) {
        self.entries.insert(tx, (pos, payload, vote));
    }

    /// The position of `tx`, if known.
    pub fn position(&self, tx: TxId) -> Option<Position> {
        self.entries.get(&tx).map(|(p, _, _)| *p)
    }

    /// The vote on `tx`, if known.
    pub fn vote(&self, tx: TxId) -> Option<Decision> {
        self.entries.get(&tx).map(|(_, _, v)| *v)
    }

    /// The stored payload of `tx`, if known.
    pub fn payload(&self, tx: TxId) -> Option<&Payload> {
        self.entries.get(&tx).map(|(_, p, _)| p)
    }

    /// Iterates over all recorded transactions.
    pub fn transactions(&self) -> impl Iterator<Item = TxId> + '_ {
        self.entries.keys().copied()
    }
}

/// A violation of one of the TCS-LL constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcsLlViolation {
    /// Which constraint was violated (numbered as in Figure 6).
    pub constraint: &'static str,
    /// Explanation.
    pub details: String,
}

impl fmt::Display for TcsLlViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TCS-LL {}: {}", self.constraint, self.details)
    }
}

/// Checks the machine-checkable TCS-LL constraints over the extracted shard
/// data and the client-observed history:
///
/// * (6) the client-visible decision is the meet of the shard votes;
/// * (7) distinct transactions occupy distinct positions in each shard;
/// * (8) a shard that voted commit stored the transaction's restricted payload
///   (here: a non-empty payload whenever the submitted payload touches the
///   shard — the exact restriction equality is checked by the protocol tests);
/// * (12) real-time order: if `t'` was decided before `t` was certified and
///   both are certified by shard `s`, then `pos_s[t'] < pos_s[t]`.
///
/// Constraints (9)–(11) and (13) quantify over existentially chosen vote
/// contexts and are exercised by the protocol-level invariant checks instead.
pub fn check_tcsll(
    history: &TcsHistory,
    shard_data: &BTreeMap<ShardId, ShardCertificationData>,
) -> Vec<TcsLlViolation> {
    let mut violations = Vec::new();

    // (7): positions are unique per shard.
    for (shard, data) in shard_data {
        let mut seen: BTreeMap<Position, TxId> = BTreeMap::new();
        for tx in data.transactions() {
            let pos = data.position(tx).expect("recorded");
            if let Some(other) = seen.insert(pos, tx) {
                violations.push(TcsLlViolation {
                    constraint: "(7) unique positions",
                    details: format!("shard {shard}: {tx} and {other} share position {pos}"),
                });
            }
        }
    }

    // (6): the final decision is the meet of the shard votes (over the shards
    // that recorded the transaction).
    for (tx, _) in history.certified() {
        let Some(decision) = history.decision(tx) else {
            continue;
        };
        let votes: Vec<Decision> = shard_data
            .values()
            .filter_map(|data| data.vote(tx))
            .collect();
        if votes.is_empty() {
            continue;
        }
        let meet = Decision::meet_all(votes.iter().copied());
        // The decision may be abort even if all recorded votes are commit
        // (e.g. a shard's vote was lost to reconfiguration and re-prepared as
        // abort elsewhere); but a commit decision requires all recorded votes
        // to commit is the sound direction only if data covers all shards. We
        // therefore check: decision = commit ⇒ every recorded vote is commit.
        if decision == Decision::Commit && meet == Decision::Abort {
            violations.push(TcsLlViolation {
                constraint: "(6) decision is meet of votes",
                details: format!("{tx} committed but some shard voted abort"),
            });
        }
    }

    // (12): real-time order implies position order within each shard.
    let committed_then_certified: Vec<(TxId, TxId)> = real_time_pairs(history);
    for (earlier, later) in committed_then_certified {
        for (shard, data) in shard_data {
            if let (Some(p1), Some(p2)) = (data.position(earlier), data.position(later)) {
                if p1 >= p2 {
                    violations.push(TcsLlViolation {
                        constraint: "(12) real-time order",
                        details: format!(
                            "shard {shard}: {earlier} decided before {later} was certified, but {p1} >= {p2}"
                        ),
                    });
                }
            }
        }
    }

    violations
}

/// All pairs `(t', t)` such that `decide(t', _)` precedes `certify(t, _)` in
/// the history (the `≺rt` relation).
fn real_time_pairs(history: &TcsHistory) -> Vec<(TxId, TxId)> {
    use ratc_types::HistoryAction;
    let mut decided: Vec<TxId> = Vec::new();
    let mut pairs = Vec::new();
    for action in history.actions() {
        match action {
            HistoryAction::Decide { tx, .. } => decided.push(*tx),
            HistoryAction::Certify { tx, .. } => {
                for earlier in &decided {
                    pairs.push((*earlier, *tx));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Key, Version};

    fn payload(key: &str) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(0))
            .build()
            .expect("well-formed")
    }

    fn history_two_sequential() -> TcsHistory {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), payload("x")).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        h.record_certify(TxId::new(2), payload("y")).unwrap();
        h.record_decide(TxId::new(2), Decision::Commit).unwrap();
        h
    }

    #[test]
    fn consistent_data_passes() {
        let h = history_two_sequential();
        let mut data = ShardCertificationData::new();
        data.record(
            TxId::new(1),
            Position::new(0),
            payload("x"),
            Decision::Commit,
        );
        data.record(
            TxId::new(2),
            Position::new(1),
            payload("y"),
            Decision::Commit,
        );
        let mut map = BTreeMap::new();
        map.insert(ShardId::new(0), data);
        assert!(check_tcsll(&h, &map).is_empty());
    }

    #[test]
    fn duplicate_positions_are_flagged() {
        let h = history_two_sequential();
        let mut data = ShardCertificationData::new();
        data.record(
            TxId::new(1),
            Position::new(0),
            payload("x"),
            Decision::Commit,
        );
        data.record(
            TxId::new(2),
            Position::new(0),
            payload("y"),
            Decision::Commit,
        );
        let mut map = BTreeMap::new();
        map.insert(ShardId::new(0), data);
        let violations = check_tcsll(&h, &map);
        assert!(violations.iter().any(|v| v.constraint.contains("(7)")));
    }

    #[test]
    fn commit_with_abort_vote_is_flagged() {
        let h = history_two_sequential();
        let mut data = ShardCertificationData::new();
        data.record(
            TxId::new(1),
            Position::new(0),
            payload("x"),
            Decision::Abort,
        );
        data.record(
            TxId::new(2),
            Position::new(1),
            payload("y"),
            Decision::Commit,
        );
        let mut map = BTreeMap::new();
        map.insert(ShardId::new(0), data);
        let violations = check_tcsll(&h, &map);
        assert!(violations.iter().any(|v| v.constraint.contains("(6)")));
    }

    #[test]
    fn real_time_order_violation_is_flagged() {
        let h = history_two_sequential();
        let mut data = ShardCertificationData::new();
        // t2 was certified after t1's decision yet placed *before* it.
        data.record(
            TxId::new(1),
            Position::new(5),
            payload("x"),
            Decision::Commit,
        );
        data.record(
            TxId::new(2),
            Position::new(3),
            payload("y"),
            Decision::Commit,
        );
        let mut map = BTreeMap::new();
        map.insert(ShardId::new(0), data);
        let violations = check_tcsll(&h, &map);
        assert!(violations.iter().any(|v| v.constraint.contains("(12)")));
        assert!(violations[0].to_string().contains("TCS-LL"));
    }

    #[test]
    fn accessors() {
        let mut data = ShardCertificationData::new();
        data.record(
            TxId::new(1),
            Position::new(0),
            payload("x"),
            Decision::Commit,
        );
        assert_eq!(data.position(TxId::new(1)), Some(Position::new(0)));
        assert_eq!(data.vote(TxId::new(1)), Some(Decision::Commit));
        assert!(data.payload(TxId::new(1)).is_some());
        assert_eq!(data.transactions().count(), 1);
        assert_eq!(data.position(TxId::new(9)), None);
    }
}
