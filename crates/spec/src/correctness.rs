//! Black-box history correctness with respect to a certification function.
//!
//! A complete history is correct w.r.t. `f` if its committed projection has a
//! legal linearization (§2). Searching over all linearizations is exponential;
//! this checker performs a greedy witness search: it repeatedly places any
//! committed transaction whose real-time predecessors are already placed and
//! whose payload is accepted by `f` against the already-placed payloads. If it
//! finds a witness, the history is certainly correct; because certification
//! functions are distributive (adding payloads can only flip decisions from
//! commit to abort), transactions the search cannot place are reported as
//! violations.

use std::fmt;

use ratc_types::{CertificationPolicy, Decision, HistoryAction, Payload, TcsHistory, TxId};

/// A violation of the TCS specification detected over a history.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecViolation {
    /// A committed transaction's payload conflicts with the payloads of
    /// transactions committed before it under every linearization attempted.
    IllegalCommit {
        /// The offending transaction.
        tx: TxId,
        /// Explanation of the failed check.
        details: String,
    },
    /// A transaction was decided but never certified, or certified twice
    /// (structural violations are normally caught at recording time).
    Structural {
        /// Explanation.
        details: String,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::IllegalCommit { tx, details } => {
                write!(f, "illegal commit of {tx}: {details}")
            }
            SpecViolation::Structural { details } => write!(f, "structural violation: {details}"),
        }
    }
}

impl std::error::Error for SpecViolation {}

/// Checks that `history` is correct with respect to the certification policy's
/// global function `f`.
///
/// Committed transactions are linearized in decision order; every committed
/// transaction must be accepted by `f` against the set of transactions
/// committed before it. Aborted and undecided transactions are unconstrained
/// by the specification (the projection `h | committed(h)` removes them).
///
/// # Errors
///
/// Returns all violations found (empty vector = correct).
pub fn check_history<P>(history: &TcsHistory, policy: &P) -> Vec<SpecViolation>
where
    P: CertificationPolicy + ?Sized,
{
    let mut violations = Vec::new();

    // Committed transactions in decision order (used as the deterministic
    // iteration order of the greedy witness search).
    let mut committed_order: Vec<TxId> = Vec::new();
    for action in history.actions() {
        if let HistoryAction::Decide { tx, decision } = action {
            if decision.is_commit() {
                committed_order.push(*tx);
            }
        }
    }
    for tx in &committed_order {
        if history.payload(*tx).is_none() {
            violations.push(SpecViolation::Structural {
                details: format!("{tx} committed without a recorded payload"),
            });
        }
    }

    // Greedy witness search: repeatedly place any not-yet-placed committed
    // transaction whose real-time predecessors are all placed and whose
    // payload is accepted by `f` against the already-placed payloads. By
    // distributivity of `f`, postponing a transaction can only make its check
    // harder, so if the greedy search gets stuck the stuck transactions are
    // genuinely unplaceable after the already-placed prefix.
    let mut remaining: Vec<TxId> = committed_order.clone();
    let mut placed_payloads: Vec<&Payload> = Vec::new();
    let mut placed: Vec<TxId> = Vec::new();
    loop {
        let mut progressed = false;
        let mut index = 0;
        while index < remaining.len() {
            let tx = remaining[index];
            let predecessors_placed = committed_order.iter().all(|other| {
                *other == tx
                    || !decided_before_certify(history, *other, tx)
                    || placed.contains(other)
            });
            let Some(payload) = history.payload(tx) else {
                remaining.remove(index);
                continue;
            };
            if predecessors_placed && policy.certify(&placed_payloads, payload) == Decision::Commit
            {
                placed.push(tx);
                placed_payloads.push(payload);
                remaining.remove(index);
                progressed = true;
            } else {
                index += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    for tx in remaining {
        if let Some(payload) = history.payload(tx) {
            violations.push(SpecViolation::IllegalCommit {
                tx,
                details: format!(
                    "payload {payload} cannot be placed in any legal linearization under {} ({} transactions placed before it)",
                    policy.name(),
                    placed.len()
                ),
            });
        }
    }

    violations
}

/// Returns `true` if `earlier`'s decision appears in the history before
/// `later`'s certify action (the real-time order `≺rt` of the paper).
fn decided_before_certify(history: &TcsHistory, earlier: TxId, later: TxId) -> bool {
    let mut decided = false;
    for action in history.actions() {
        match action {
            HistoryAction::Decide { tx, .. } if *tx == earlier => decided = true,
            HistoryAction::Certify { tx, .. } if *tx == later => return decided,
            _ => {}
        }
    }
    decided
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Key, Serializability, Value, Version};

    fn rw(key: &str, read_v: u64, commit_v: u64) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(read_v))
            .write(Key::new(key), Value::from("v"))
            .commit_version(Version::new(commit_v))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn disjoint_commits_are_correct() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), rw("a", 0, 1)).unwrap();
        h.record_certify(TxId::new(2), rw("b", 0, 1)).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        h.record_decide(TxId::new(2), Decision::Commit).unwrap();
        assert!(check_history(&h, &Serializability::new()).is_empty());
    }

    #[test]
    fn conflicting_double_commit_is_flagged() {
        let mut h = TcsHistory::new();
        // Both read version 0 of the same key and write it; committing both is
        // not serializable.
        h.record_certify(TxId::new(1), rw("x", 0, 1)).unwrap();
        h.record_certify(TxId::new(2), rw("x", 0, 2)).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        h.record_decide(TxId::new(2), Decision::Commit).unwrap();
        let violations = check_history(&h, &Serializability::new());
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            SpecViolation::IllegalCommit { tx, .. } if tx == TxId::new(2)
        ));
        assert!(violations[0].to_string().contains("illegal commit"));
    }

    #[test]
    fn conflicting_transactions_where_one_aborts_are_correct() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), rw("x", 0, 1)).unwrap();
        h.record_certify(TxId::new(2), rw("x", 0, 2)).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        h.record_decide(TxId::new(2), Decision::Abort).unwrap();
        assert!(check_history(&h, &Serializability::new()).is_empty());
    }

    #[test]
    fn sequential_dependent_commits_are_correct() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), rw("x", 0, 1)).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        // The second transaction read the version written by the first.
        h.record_certify(TxId::new(2), rw("x", 1, 2)).unwrap();
        h.record_decide(TxId::new(2), Decision::Commit).unwrap();
        assert!(check_history(&h, &Serializability::new()).is_empty());
    }

    #[test]
    fn incomplete_histories_are_checked_on_their_committed_part() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), rw("x", 0, 1)).unwrap();
        h.record_certify(TxId::new(2), rw("y", 0, 1)).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        // t2 undecided.
        assert!(check_history(&h, &Serializability::new()).is_empty());
    }
}
