//! Safety and liveness checking for chaos (fault-injection) runs.
//!
//! A chaos soak (see the `ratc-chaos` crate) subjects a cluster to crashes,
//! restarts, message loss/duplication/reordering, link cuts, partitions and
//! mid-flight reconfigurations, then lifts the faults and lets the cluster
//! quiesce. Two properties must hold of the client-observed history:
//!
//! * **safety** — the history satisfies the TCS specification (§2): at most
//!   one decision per transaction, and the committed projection has a legal
//!   linearization under the certification function. Structural violations
//!   observed while *recording* (contradictory `DECISION`s reaching the
//!   client) are collected by the client actors themselves and folded in
//!   here.
//! * **liveness** — once faults lift and the cluster quiesces, every
//!   submitted transaction is decided (the paper's liveness guarantee under
//!   Assumption 1: eventually reconfigurations complete and messages between
//!   live processes are delivered).
//!
//! These checkers are pure functions over recorded histories, so they run
//! identically against all three stacks.

use ratc_types::{CertificationPolicy, TcsHistory, TxId};

use crate::correctness::check_history;

/// The verdict of [`check_chaos_run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosVerdict {
    /// Safety violations: structural client-side violations plus every
    /// specification violation found by the history checker. Empty in a
    /// correct run.
    pub safety_violations: Vec<String>,
    /// Transactions submitted but never decided — a liveness violation if
    /// the cluster was given the chance to quiesce after faults lifted.
    pub undecided: Vec<TxId>,
}

impl ChaosVerdict {
    /// `true` if the run was safe (no contradictory or spec-violating
    /// decisions).
    pub fn safe(&self) -> bool {
        self.safety_violations.is_empty()
    }

    /// `true` if every submitted transaction was decided.
    pub fn live(&self) -> bool {
        self.undecided.is_empty()
    }

    /// `true` if the run was both safe and live.
    pub fn ok(&self) -> bool {
        self.safe() && self.live()
    }
}

/// Returns every submitted-but-undecided transaction of `history` (the
/// liveness check, to be run after faults lift and the cluster quiesces).
pub fn check_liveness(history: &TcsHistory) -> Vec<TxId> {
    history.undecided().collect()
}

/// Checks a chaos run end to end: structural violations recorded by the
/// client while the run executed (`client_violations`), the TCS history
/// checker under `policy`, and liveness.
pub fn check_chaos_run<P>(
    history: &TcsHistory,
    policy: &P,
    client_violations: &[String],
) -> ChaosVerdict
where
    P: CertificationPolicy + ?Sized,
{
    let mut safety_violations: Vec<String> = client_violations.to_vec();
    safety_violations.extend(
        check_history(history, policy)
            .into_iter()
            .map(|v| v.to_string()),
    );
    ChaosVerdict {
        safety_violations,
        undecided: check_liveness(history),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Decision, Key, Payload, Serializability, Version};

    fn rw(key: &str, read: u64, commit: u64) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(read))
            .write(Key::new(key), ratc_types::Value::from("v"))
            .commit_version(Version::new(commit))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn complete_correct_history_is_safe_and_live() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), rw("x", 0, 1)).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        h.record_certify(TxId::new(2), rw("x", 1, 2)).unwrap();
        h.record_decide(TxId::new(2), Decision::Commit).unwrap();
        let verdict = check_chaos_run(&h, &Serializability::new(), &[]);
        assert!(verdict.ok(), "verdict: {verdict:?}");
    }

    #[test]
    fn undecided_transactions_fail_liveness_but_not_safety() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), rw("x", 0, 1)).unwrap();
        h.record_certify(TxId::new(2), rw("y", 0, 2)).unwrap();
        h.record_decide(TxId::new(1), Decision::Abort).unwrap();
        let verdict = check_chaos_run(&h, &Serializability::new(), &[]);
        assert!(verdict.safe());
        assert!(!verdict.live());
        assert_eq!(verdict.undecided, vec![TxId::new(2)]);
        assert_eq!(check_liveness(&h), vec![TxId::new(2)]);
    }

    #[test]
    fn client_violations_are_folded_into_safety() {
        let h = TcsHistory::new();
        let verdict = check_chaos_run(
            &h,
            &Serializability::new(),
            &["contradictory decisions for t1: commit and then abort".to_owned()],
        );
        assert!(!verdict.safe());
        assert!(verdict.live());
        assert!(!verdict.ok());
    }

    #[test]
    fn spec_violating_commits_fail_safety() {
        // Both transactions read version 0 of the same key and commit — no
        // legal linearization exists under serializability.
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), rw("hot", 0, 1)).unwrap();
        h.record_certify(TxId::new(2), rw("hot", 0, 2)).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        h.record_decide(TxId::new(2), Decision::Commit).unwrap();
        let verdict = check_chaos_run(&h, &Serializability::new(), &[]);
        assert!(!verdict.safe());
        assert!(verdict.live());
    }
}
