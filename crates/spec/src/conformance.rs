//! Trait-conformance suite for the unified
//! [`TcsCluster`](ratc_harness::TcsCluster) facade.
//!
//! One generic driver, instantiated for every stack, asserts that the three
//! TCS implementations expose **identical observable semantics** through the
//! facade on a fixed seeded workload:
//!
//! * **submit/decide** — a disjoint workload commits in full on every stack,
//!   with a latency record (hops and simulated time) for every decision, and
//!   a conflicting pair is fully decided with at most one commit;
//! * **coordinator handoff** — `submit_via` decides through *every* member
//!   of the stack's coordinator pool (any replica on the RATC stacks, any
//!   transaction-manager group member on the baseline, where non-leader
//!   members forward to the leader);
//! * **crash/restart** — a crashed follower is survivable (after a
//!   reconfiguration on the `f + 1` RATC stacks; masked outright on the
//!   `2f + 1` baseline), the epoch introspection reflects exactly the
//!   reconfigurations that happened, and a restart succeeds;
//! * **specification** — every history passes the black-box TCS checker and
//!   the client observes no structural violations, on every stack.
//!
//! Differences the suite *allows* are exactly the ones the paper describes:
//! which transaction of a conflicting pair wins (message timing), decision
//! latency (5 vs 7 delays), and whether recovery needs a reconfiguration.

use ratc_harness::{ClusterSpec, ExecutionMode, StackKind};
use ratc_types::{Decision, Epoch, Key, Payload, Serializability, ShardId, TxId, Value, Version};

use crate::correctness::check_history;

/// Statistics of one conformance run (useful for debugging a failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// The stack checked.
    pub stack: StackKind,
    /// Transactions decided across all scenarios.
    pub decided: usize,
    /// Transactions committed across all scenarios.
    pub committed: usize,
    /// Whether the crash scenario reconfigured (RATC) or masked (baseline).
    pub reconfigured: bool,
}

fn rw(key: &str, commit_version: u64) -> Payload {
    Payload::builder()
        .read(Key::new(key), Version::ZERO)
        .write(Key::new(key), Value::from("v"))
        .commit_version(Version::new(commit_version))
        .build()
        .expect("well-formed")
}

fn err(stack: StackKind, scenario: &str, detail: String) -> String {
    format!("{stack} / {scenario}: {detail}")
}

/// Runs the full conformance scenario sequence against `stack` with `seed`
/// on the deterministic simulator.
///
/// # Errors
///
/// Returns a description of the first observable divergence from the shared
/// TCS semantics.
pub fn check_conformance(stack: StackKind, seed: u64) -> Result<ConformanceReport, String> {
    check_conformance_with(stack, seed, ExecutionMode::Sim)
}

/// Runs the full conformance scenario sequence against `stack` with `seed`
/// on the given execution backend. The scenarios, assertions and allowed
/// divergences are identical on both backends: the suite checks the
/// protocol-level contract, which must not depend on the engine driving the
/// actors.
///
/// # Errors
///
/// Returns a description of the first observable divergence from the shared
/// TCS semantics.
pub fn check_conformance_with(
    stack: StackKind,
    seed: u64,
    execution: ExecutionMode,
) -> Result<ConformanceReport, String> {
    let mut cluster = ClusterSpec::new(stack)
        .with_shards(2)
        .with_seed(seed)
        .with_execution(execution)
        .build();
    if cluster.stack() != stack {
        return Err(err(stack, "build", format!("built {}", cluster.stack())));
    }
    let mut next_tx = 0u64;
    let mut fresh_tx = || {
        next_tx += 1;
        TxId::new(next_tx)
    };

    // --- submit/decide: a disjoint workload commits in full ---------------
    let disjoint: Vec<TxId> = (0..8)
        .map(|i| {
            let tx = fresh_tx();
            cluster.submit(tx, rw(&format!("disjoint-{i}"), 1));
            tx
        })
        .collect();
    cluster.run_to_quiescence();
    let history = cluster.history();
    for tx in &disjoint {
        if history.decision(*tx) != Some(Decision::Commit) {
            return Err(err(
                stack,
                "submit/decide",
                format!("{tx} not committed: {:?}", history.decision(*tx)),
            ));
        }
    }
    let latencies = cluster.latencies();
    for tx in &disjoint {
        let Some(latency) = latencies.get(tx) else {
            return Err(err(stack, "submit/decide", format!("no latency for {tx}")));
        };
        if latency.hops == 0 || latency.micros == 0 {
            return Err(err(
                stack,
                "submit/decide",
                format!("degenerate latency for {tx}: {latency:?}"),
            ));
        }
    }

    // --- submit/decide: a conflicting pair decides with <= 1 commit -------
    let (a, b) = (fresh_tx(), fresh_tx());
    cluster.submit(a, rw("conflict", 1));
    cluster.submit(b, rw("conflict", 2));
    cluster.run_to_quiescence();
    let history = cluster.history();
    let conflict_commits = [a, b]
        .iter()
        .filter(|tx| history.decision(**tx) == Some(Decision::Commit))
        .count();
    if history.decision(a).is_none() || history.decision(b).is_none() {
        return Err(err(stack, "conflict", "conflicting pair undecided".into()));
    }
    if conflict_commits > 1 {
        return Err(err(
            stack,
            "conflict",
            "both conflicting txs committed".into(),
        ));
    }

    // --- coordinator handoff: submit_via through every pool member --------
    for (i, coordinator) in cluster.coordinator_pool().into_iter().enumerate() {
        let tx = fresh_tx();
        cluster.submit_via(tx, rw(&format!("via-{i}"), 1), coordinator);
        cluster.run_to_quiescence();
        if cluster.history().decision(tx).is_none() {
            return Err(err(
                stack,
                "submit_via",
                format!("{tx} undecided through coordinator {coordinator}"),
            ));
        }
    }

    // --- crash/restart (+ reconfiguration where the stack needs it) -------
    let shard = ShardId::new(0);
    if cluster.epoch_of(shard) != Epoch::ZERO {
        return Err(err(stack, "crash", "epoch moved before any crash".into()));
    }
    let leader = cluster
        .leader_of(shard)
        .ok_or_else(|| err(stack, "crash", "no leader".into()))?;
    let follower = cluster
        .members_of(shard)
        .into_iter()
        .find(|p| *p != leader)
        .ok_or_else(|| err(stack, "crash", "no follower".into()))?;
    cluster.crash(follower);
    let reconfigured = cluster.supports_reconfiguration();
    if reconfigured {
        cluster.start_reconfiguration(shard, leader, vec![follower]);
        cluster.run_to_quiescence();
        if cluster.epoch_of(shard) != Epoch::new(1) {
            return Err(err(
                stack,
                "reconfiguration",
                format!(
                    "epoch is {} after one reconfiguration",
                    cluster.epoch_of(shard)
                ),
            ));
        }
        if cluster.members_of(shard).contains(&follower) {
            return Err(err(
                stack,
                "reconfiguration",
                "crashed follower still a member".into(),
            ));
        }
    }
    let survivors: Vec<TxId> = (0..4)
        .map(|i| {
            let tx = fresh_tx();
            cluster.submit(tx, rw(&format!("post-crash-{i}"), 1));
            tx
        })
        .collect();
    cluster.run_to_quiescence();
    let history = cluster.history();
    for tx in &survivors {
        if history.decision(*tx) != Some(Decision::Commit) {
            return Err(err(
                stack,
                "crash",
                format!("{tx} not committed after the crash was handled"),
            ));
        }
    }
    if !cluster.restart(follower) {
        return Err(err(
            stack,
            "restart",
            "restart of crashed follower failed".into(),
        ));
    }
    cluster.run_to_quiescence();
    let tx = fresh_tx();
    cluster.submit(tx, rw("post-restart", 1));
    cluster.run_to_quiescence();
    let history = cluster.history();
    if history.decision(tx) != Some(Decision::Commit) {
        return Err(err(
            stack,
            "restart",
            format!("{tx} not committed after restart"),
        ));
    }
    if !reconfigured && cluster.epoch_of(shard) != Epoch::ZERO {
        return Err(err(
            stack,
            "restart",
            "masking stack moved its epoch".into(),
        ));
    }

    // --- specification: the whole run is clean ----------------------------
    let violations = cluster.client_violations();
    if !violations.is_empty() {
        return Err(err(
            stack,
            "spec",
            format!("client violations: {violations:?}"),
        ));
    }
    let spec_violations = check_history(&history, &Serializability::new());
    if !spec_violations.is_empty() {
        return Err(err(
            stack,
            "spec",
            format!("history violations: {spec_violations:?}"),
        ));
    }
    Ok(ConformanceReport {
        stack,
        decided: history.decide_count(),
        committed: history.committed().count(),
        reconfigured,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conforms(stack: StackKind) {
        for seed in [1u64, 17] {
            let report = check_conformance(stack, seed).unwrap_or_else(|e| panic!("{e}"));
            assert!(report.decided > 0 && report.committed > 0);
            assert_eq!(
                report.reconfigured,
                stack != StackKind::Baseline,
                "only the f+1 stacks reconfigure"
            );
        }
    }

    #[test]
    fn core_conforms_to_the_tcs_cluster_contract() {
        conforms(StackKind::Core);
    }

    #[test]
    fn rdma_conforms_to_the_tcs_cluster_contract() {
        conforms(StackKind::Rdma);
    }

    #[test]
    fn baseline_conforms_to_the_tcs_cluster_contract() {
        conforms(StackKind::Baseline);
    }

    fn conforms_threaded(stack: StackKind) {
        let report = check_conformance_with(stack, 1, ExecutionMode::Threads)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(report.decided > 0 && report.committed > 0);
        assert_eq!(report.reconfigured, stack != StackKind::Baseline);
    }

    #[test]
    fn core_conforms_on_the_threaded_backend() {
        conforms_threaded(StackKind::Core);
    }

    #[test]
    fn rdma_conforms_on_the_threaded_backend() {
        conforms_threaded(StackKind::Rdma);
    }

    #[test]
    fn baseline_conforms_on_the_threaded_backend() {
        conforms_threaded(StackKind::Baseline);
    }

    /// Runs a workload whose per-transaction outcomes are *forced* (disjoint
    /// transactions must commit; a read of an already-overwritten version
    /// must abort) and returns the decision of every transaction.
    fn forced_workload(stack: StackKind, execution: ExecutionMode) -> Vec<(TxId, Decision)> {
        let mut cluster = ClusterSpec::new(stack)
            .with_shards(2)
            .with_seed(5)
            .with_execution(execution)
            .build();
        let mut txs = Vec::new();
        // Ten disjoint transactions: every stack must commit all of them.
        for i in 0..10u64 {
            let tx = TxId::new(i + 1);
            cluster.submit(tx, rw(&format!("agree-{i}"), 1));
            txs.push(tx);
        }
        cluster.run_to_quiescence();
        // Sequential conflicts: the second read of version 0 happens after
        // version 1 committed, so it must abort — on every backend.
        for i in 0..3u64 {
            let winner = TxId::new(100 + i);
            cluster.submit(winner, rw(&format!("stale-{i}"), 1));
            cluster.run_to_quiescence();
            let loser = TxId::new(200 + i);
            cluster.submit(loser, rw(&format!("stale-{i}"), 2));
            cluster.run_to_quiescence();
            txs.push(winner);
            txs.push(loser);
        }
        assert!(
            cluster.client_violations().is_empty(),
            "{stack}/{execution}"
        );
        let history = cluster.history();
        let violations = check_history(&history, &Serializability::new());
        assert!(violations.is_empty(), "{stack}/{execution}: {violations:?}");
        txs.into_iter()
            .map(|tx| {
                let decision = history
                    .decision(tx)
                    .unwrap_or_else(|| panic!("{stack}/{execution}: {tx} undecided"));
                (tx, decision)
            })
            .collect()
    }

    /// The same seeded workload, run once on the simulator and once on the
    /// threaded backend, reaches the identical per-transaction commit/abort
    /// decisions on every stack — the execution engine is not observable at
    /// the TCS level.
    #[test]
    fn sim_and_threaded_backends_agree_on_forced_decisions() {
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            let sim = forced_workload(stack, ExecutionMode::Sim);
            let threaded = forced_workload(stack, ExecutionMode::Threads);
            assert_eq!(sim, threaded, "{stack}: backends diverged");
            // The forced outcomes themselves: disjoint all commit, every
            // sequential stale read aborts.
            for (tx, decision) in &sim {
                let expected = if tx.as_u64() >= 200 {
                    Decision::Abort
                } else {
                    Decision::Commit
                };
                assert_eq!(decision, &expected, "{stack}: {tx}");
            }
        }
    }

    /// The same disjoint seeded workload produces the identical committed
    /// set on every stack: the observable semantics of `submit`/decide do
    /// not depend on the implementation.
    #[test]
    fn all_stacks_agree_on_a_disjoint_seeded_workload() {
        let mut outcomes = Vec::new();
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            let mut cluster = ClusterSpec::new(stack).with_shards(2).with_seed(5).build();
            for i in 0..12u64 {
                cluster.submit(TxId::new(i + 1), rw(&format!("agree-{i}"), 1));
            }
            cluster.run_to_quiescence();
            let history = cluster.history();
            let committed: Vec<TxId> = history.committed().collect();
            assert!(cluster.client_violations().is_empty(), "{stack}");
            outcomes.push((stack, committed));
        }
        let reference = outcomes[0].1.clone();
        for (stack, committed) in &outcomes {
            assert_eq!(
                committed, &reference,
                "{stack}: committed set diverged from {}",
                outcomes[0].0
            );
        }
    }
}
