//! [`ClusterSpec`]: one builder that deploys any of the three stacks.

use std::sync::Arc;

use ratc_baseline::{BaselineCluster, BaselineClusterConfig};
use ratc_core::batch::BatchingConfig;
use ratc_core::flow::FlowControlConfig;
use ratc_core::harness::{Cluster, ClusterConfig};
use ratc_core::replica::TruncationConfig;
use ratc_rdma::{RdmaCluster, RdmaClusterConfig, ReconfigMode};
use ratc_sim::{ExecutionMode, SimConfig};
use ratc_types::{CertificationPolicy, Serializability};

use crate::cluster::{StackKind, TcsCluster};

/// A stack-agnostic deployment specification.
///
/// One spec describes a TCS deployment in protocol-neutral terms — number of
/// shards, failures to tolerate per shard (`f`), spare replicas, the
/// certification policy, the truncation/batching knobs and the simulation
/// seed — and [`ClusterSpec::build`] turns it into any of the three stacks:
///
/// * [`StackKind::Core`] / [`StackKind::Rdma`] / [`StackKind::RdmaNaive`]
///   deploy `f + 1` replicas per shard (the paper's replication-cost
///   headline);
/// * [`StackKind::Baseline`] deploys `2f + 1` replicas per shard plus a
///   `2f + 1`-member transaction-manager group.
///
/// Knobs a stack does not have are ignored where they are meaningless: the
/// baseline has no spares (no reconfiguration) and prunes decided payloads
/// unconditionally instead of using [`TruncationConfig`].
#[derive(Clone)]
pub struct ClusterSpec {
    /// The stack to deploy.
    pub stack: StackKind,
    /// Number of shards.
    pub shards: u32,
    /// Failures tolerated per shard (`f`).
    pub failures: usize,
    /// Spare (fresh) replicas per shard available to reconfiguration.
    pub spares_per_shard: usize,
    /// The certification policy (isolation level).
    pub policy: Arc<dyn CertificationPolicy>,
    /// Checkpointed log truncation (RATC stacks; default enabled, batch 32).
    pub truncation: TruncationConfig,
    /// Batched certification pipeline (default disabled).
    pub batching: BatchingConfig,
    /// Flow control: coordinator admission window and retry backoff
    /// (default enabled; [`FlowControlConfig::legacy`] restores the pre-flow
    /// immediate-retry behaviour).
    pub flow: FlowControlConfig,
    /// Simulation parameters (seed, latency model, tracing).
    pub sim: SimConfig,
    /// Which engine drives the cluster's actors: the deterministic simulator
    /// (default) or one OS thread per process (see [`ExecutionMode`]).
    pub execution: ExecutionMode,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            stack: StackKind::Core,
            shards: 2,
            failures: 1,
            spares_per_shard: 2,
            policy: Arc::new(Serializability::new()),
            truncation: TruncationConfig::default(),
            batching: BatchingConfig::default(),
            flow: FlowControlConfig::default(),
            sim: SimConfig::default(),
            execution: ExecutionMode::default(),
        }
    }
}

impl std::fmt::Debug for ClusterSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSpec")
            .field("stack", &self.stack)
            .field("shards", &self.shards)
            .field("failures", &self.failures)
            .field("spares_per_shard", &self.spares_per_shard)
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl ClusterSpec {
    /// A default spec for the given stack.
    pub fn new(stack: StackKind) -> Self {
        ClusterSpec {
            stack,
            ..ClusterSpec::default()
        }
    }

    /// Returns a copy targeting a different stack (everything else kept).
    pub fn with_stack(mut self, stack: StackKind) -> Self {
        self.stack = stack;
        self
    }

    /// Returns a copy with the given number of shards.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy tolerating `f` failures per shard (`f + 1` replicas on
    /// the RATC stacks, `2f + 1` on the baseline).
    pub fn with_failures(mut self, f: usize) -> Self {
        self.failures = f;
        self
    }

    /// Returns a copy with the given number of spares per shard.
    pub fn with_spares_per_shard(mut self, spares: usize) -> Self {
        self.spares_per_shard = spares;
        self
    }

    /// Returns a copy with the given certification policy.
    pub fn with_policy(mut self, policy: Arc<dyn CertificationPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with the given checkpointed-truncation policy.
    pub fn with_truncation(mut self, truncation: TruncationConfig) -> Self {
        self.truncation = truncation;
        self
    }

    /// Returns a copy with the given batching-pipeline knobs.
    pub fn with_batching(mut self, batching: BatchingConfig) -> Self {
        self.batching = batching;
        self
    }

    /// Returns a copy with the given flow-control knobs.
    pub fn with_flow_control(mut self, flow: FlowControlConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Returns a copy with the given simulation configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Returns a copy with the given random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Returns a copy with commit-path observability enabled: the cluster
    /// records per-transaction lifecycle milestones and flow-control gauges
    /// (see [`TcsCluster::obs_events`]).
    /// Recording never perturbs a seeded schedule.
    pub fn with_observability(mut self) -> Self {
        self.sim.obs = true;
        self
    }

    /// Returns a copy with the given execution mode (simulated or threaded).
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Replicas this spec deploys per shard on its stack.
    pub fn replicas_per_shard(&self) -> usize {
        match self.stack {
            StackKind::Core | StackKind::Rdma | StackKind::RdmaNaive => self.failures + 1,
            StackKind::Baseline => 2 * self.failures + 1,
        }
    }

    /// Builds the spec's stack behind the unified [`TcsCluster`] facade.
    pub fn build(&self) -> Box<dyn TcsCluster> {
        match self.stack {
            StackKind::Core => Box::new(self.build_core()),
            StackKind::Rdma | StackKind::RdmaNaive => Box::new(self.build_rdma()),
            StackKind::Baseline => Box::new(self.build_baseline()),
        }
    }

    /// Builds a concrete message-passing cluster from this spec (for
    /// white-box consumers such as the invariant checkers and the
    /// log-differential suites). Ignores [`ClusterSpec::stack`].
    pub fn build_core(&self) -> Cluster {
        Cluster::new(ClusterConfig {
            shards: self.shards,
            replicas_per_shard: self.failures + 1,
            spares_per_shard: self.spares_per_shard,
            policy: self.policy.clone(),
            truncation: self.truncation,
            batching: self.batching,
            flow: self.flow,
            sim: self.sim.clone(),
            execution: self.execution,
        })
    }

    /// Builds a concrete RDMA cluster from this spec, in naive per-shard
    /// mode when [`ClusterSpec::stack`] is [`StackKind::RdmaNaive`] and
    /// correct global mode otherwise.
    pub fn build_rdma(&self) -> RdmaCluster {
        let mode = if self.stack == StackKind::RdmaNaive {
            ReconfigMode::NaivePerShard
        } else {
            ReconfigMode::GlobalCorrect
        };
        RdmaCluster::new(RdmaClusterConfig {
            shards: self.shards,
            replicas_per_shard: self.failures + 1,
            spares_per_shard: self.spares_per_shard,
            policy: self.policy.clone(),
            sim: self.sim.clone(),
            mode,
            truncation: self.truncation,
            batching: self.batching,
            flow: self.flow,
            execution: self.execution,
        })
    }

    /// Builds a concrete baseline cluster from this spec. Ignores
    /// [`ClusterSpec::stack`], the spare pool and the truncation knob (the
    /// baseline prunes decided payloads unconditionally).
    pub fn build_baseline(&self) -> BaselineCluster {
        BaselineCluster::new(BaselineClusterConfig {
            shards: self.shards,
            f: self.failures,
            policy: self.policy.clone(),
            batching: self.batching,
            flow: self.flow,
            sim: self.sim.clone(),
            execution: self.execution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Decision, Key, Payload, TxId, Value, Version};

    fn rw(key: &str) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(0))
            .write(Key::new(key), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn one_spec_builds_all_stacks_and_they_all_commit() {
        for stack in [
            StackKind::Core,
            StackKind::Rdma,
            StackKind::RdmaNaive,
            StackKind::Baseline,
        ] {
            let mut cluster = ClusterSpec::new(stack).with_seed(3).build();
            assert_eq!(cluster.stack(), stack);
            let coordinator = cluster.submit(TxId::new(1), rw("x"));
            cluster.run_to_quiescence();
            assert_eq!(
                cluster.history().decision(TxId::new(1)),
                Some(Decision::Commit),
                "{stack}: transaction undecided or aborted"
            );
            let latency = cluster.latencies()[&TxId::new(1)];
            assert!(latency.hops > 0 && latency.micros > 0, "{stack}");
            assert!(cluster.client_violations().is_empty(), "{stack}");
            assert!(cluster.coordinator_pool().contains(&coordinator), "{stack}");
        }
    }

    #[test]
    fn replica_counts_follow_the_paper() {
        let ratc = ClusterSpec::new(StackKind::Core).with_failures(2);
        assert_eq!(ratc.replicas_per_shard(), 3);
        let baseline = ratc.clone().with_stack(StackKind::Baseline);
        assert_eq!(baseline.replicas_per_shard(), 5);
        let cluster = baseline.build();
        assert_eq!(cluster.members_of(ratc_types::ShardId::new(0)).len(), 5);
    }

    #[test]
    fn introspection_is_consistent_across_stacks() {
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            let cluster = ClusterSpec::new(stack).with_shards(3).build();
            assert_eq!(cluster.shards().len(), 3);
            for shard in cluster.shards() {
                let members = cluster.members_of(shard);
                assert_eq!(members.len(), cluster.roster_of(shard).len());
                let leader = cluster.leader_of(shard).expect("leader");
                assert!(members.contains(&leader), "{stack}: leader not a member");
                assert_eq!(cluster.epoch_of(shard), ratc_types::Epoch::ZERO);
            }
            assert!(!cluster.all_processes().is_empty());
            assert!(!cluster.coordinator_pool().is_empty());
        }
    }
}
