//! Stack-agnostic cluster facade for the RATC workspace.
//!
//! The paper's central claim is that one Transaction Certification Service
//! abstraction admits several interchangeable implementations: the
//! message-passing protocol of §3 (`ratc-core`), the RDMA-based protocol of
//! §5 (`ratc-rdma`), and the vanilla 2PC-over-Paxos baseline of §1
//! (`ratc-baseline`, the design lineage of Gray & Lamport's *Consensus on
//! Transaction Commit*). This crate makes that interchangeability a
//! first-class API instead of a family of look-alike harnesses:
//!
//! * [`TcsCluster`] — the one trait every deployed cluster implements:
//!   submission (`submit` / `submit_via` / `resubmit` / `retry`), fault
//!   injection (`crash` / `restart`, link faults, partitions),
//!   reconfiguration, simulated-time control, and uniform observation
//!   (history, latencies, membership/leader/epoch introspection, violation
//!   queries);
//! * [`StackKind`] — the stack selector naming which paper protocol a
//!   cluster realises;
//! * [`ClusterSpec`] — one builder (shards, failures tolerated, spares,
//!   certification policy, truncation, batching, simulation seed) that
//!   constructs any stack, replacing the three divergent `*ClusterConfig`
//!   builders for stack-generic code.
//!
//! Consumers that need exactly one concrete stack (white-box invariant
//! checkers, log-differential suites) can still reach it through
//! [`ClusterSpec::build_core`] / [`ClusterSpec::build_rdma`] /
//! [`ClusterSpec::build_baseline`], sharing the spec with the generic path.
//!
//! # Quick start
//!
//! ```
//! use ratc_harness::{ClusterSpec, StackKind};
//! use ratc_types::prelude::*;
//!
//! for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
//!     let mut cluster = ClusterSpec::new(stack).with_seed(7).build();
//!     let payload = Payload::builder()
//!         .read(Key::new("x"), Version::new(0))
//!         .write(Key::new("x"), Value::from("1"))
//!         .commit_version(Version::new(1))
//!         .build()?;
//!     cluster.submit(TxId::new(1), payload);
//!     cluster.run_to_quiescence();
//!     assert_eq!(cluster.history().decision(TxId::new(1)), Some(Decision::Commit));
//! }
//! # Ok::<(), PayloadError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod spec;

pub use cluster::{StackKind, TcsCluster};
pub use ratc_core::client::DecisionLatency;
pub use ratc_sim::ExecutionMode;
pub use spec::ClusterSpec;
