//! The [`TcsCluster`] trait and its implementations for the three stacks.
//!
//! Each implementation delegates to the stack's own deployment harness; the
//! trait adds no protocol logic. Capability probes
//! ([`TcsCluster::supports_reconfiguration`],
//! [`TcsCluster::reconfiguration_is_global`],
//! [`TcsCluster::replicas_coordinate`]) let generic drivers (experiments,
//! chaos, conformance suites) handle the real semantic differences between
//! the protocols — everything else is the same one-liner on every stack.

use std::collections::BTreeMap;
use std::fmt;

use ratc_baseline::{BaselineCluster, BaselineShardReplica};
use ratc_core::client::DecisionLatency;
use ratc_core::harness::Cluster;
use ratc_core::log::TxPhase;
use ratc_core::replica::{Replica, Status};
use ratc_rdma::replica::RdmaStatus;
use ratc_rdma::{RdmaCluster, RdmaReplica, ReconfigMode};
use ratc_sim::faults::LinkFault;
use ratc_sim::metrics::MsgTypeCounters;
use ratc_sim::{
    fold_timelines, Blackout, CtrlEvent, CtrlMilestone, ExecutionMode, LatencyUnit, PhaseBreakdown,
    SimDuration, SimTime, TxObsEvent, TxTimeline,
};
use ratc_types::{Epoch, HashSharding, Payload, ProcessId, ShardId, ShardMap, TcsHistory, TxId};

/// Which TCS implementation a cluster (or an experiment, or a chaos run)
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StackKind {
    /// The message-passing RATC protocol (`ratc-core`, §3, Figure 1):
    /// `f + 1` replicas per shard, 5-message-delay decisions, per-shard
    /// Vertical-Paxos-style reconfiguration.
    Core,
    /// The RDMA-based RATC protocol (`ratc-rdma`, §5, Figures 7–8) with the
    /// correct whole-system reconfiguration: votes and decisions persisted
    /// by NIC-acknowledged RDMA writes, global epochs, probing closes stale
    /// coordinators' connections.
    Rdma,
    /// The RDMA data path combined with the **incorrect** naive per-shard
    /// reconfiguration of §3 — the Figure 4a counter-example's hunting
    /// ground. Unsafe by design; exists to reproduce the violation class.
    RdmaNaive,
    /// The vanilla 2PC-over-Paxos baseline (`ratc-baseline`, §1): `2f + 1`
    /// replicas per group, 7-message-delay decisions, failures masked by
    /// Paxos quorums instead of reconfiguration (the lineage of Gray &
    /// Lamport's *Consensus on Transaction Commit*).
    Baseline,
}

impl fmt::Display for StackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackKind::Core => f.write_str("ratc-mp"),
            StackKind::Rdma => f.write_str("ratc-rdma"),
            StackKind::RdmaNaive => f.write_str("ratc-rdma-naive"),
            StackKind::Baseline => f.write_str("2pc-paxos"),
        }
    }
}

/// One deployed TCS cluster, whatever the stack.
///
/// The trait captures the full operator surface the workspace's consumers
/// need: experiments drive `submit`/`run_*`/`latencies`, the chaos nemesis
/// adds `crash`/`restart`/link faults/`start_reconfiguration`, and the spec
/// suites observe `history` and the introspection queries. Implementations
/// exist for [`Cluster`] (§3 message passing), [`RdmaCluster`] (§5 RDMA) and
/// [`BaselineCluster`] (2PC over Paxos); construct them uniformly with
/// [`ClusterSpec`](crate::ClusterSpec).
pub trait TcsCluster {
    /// The stack this cluster implements.
    fn stack(&self) -> StackKind;

    // --- submission -------------------------------------------------------

    /// Submits a transaction for certification, letting the harness choose a
    /// coordinator (round-robin over live replicas on the RATC stacks, the
    /// transaction-manager leader on the baseline). Returns the coordinator.
    fn submit(&mut self, tx: TxId, payload: Payload) -> ProcessId;

    /// Submits a transaction through a specific coordinator — any replica on
    /// the RATC stacks, any transaction-manager group member on the baseline
    /// (non-leader members forward to the leader).
    fn submit_via(&mut self, tx: TxId, payload: Payload, coordinator: ProcessId);

    /// Re-drives an already-submitted transaction without re-recording it in
    /// the client history (the client retry of the TCS model).
    fn resubmit(&mut self, tx: TxId, payload: Payload);

    /// Asks `replica` to act as a recovery coordinator for `tx` (the `retry`
    /// function of Figure 1). No-op on the baseline, whose transaction
    /// manager re-drives 2PC through its own retry timer.
    fn retry(&mut self, replica: ProcessId, tx: TxId);

    // --- faults and membership change -------------------------------------

    /// Crashes a process immediately (volatile state lost).
    fn crash(&mut self, pid: ProcessId);

    /// Restarts a crashed process from its modelled stable storage. Returns
    /// `false` if `pid` was not crashed.
    fn restart(&mut self, pid: ProcessId) -> bool;

    /// Asks `initiator` to start reconfiguring `shard`, excluding `exclude`
    /// and drawing replacements from the spare pool. No-op on stacks without
    /// reconfiguration (see [`TcsCluster::supports_reconfiguration`]).
    fn start_reconfiguration(
        &mut self,
        shard: ShardId,
        initiator: ProcessId,
        exclude: Vec<ProcessId>,
    );

    // --- simulated time ----------------------------------------------------

    /// Runs the simulation until no events remain.
    fn run_to_quiescence(&mut self);

    /// Runs the simulation for `duration` of simulated time.
    fn run_for(&mut self, duration: SimDuration);

    /// Runs the simulation until the given absolute simulated time.
    fn run_until(&mut self, until: SimTime);

    /// The current simulated time.
    fn now(&self) -> SimTime;

    /// Events executed so far — a determinism fingerprint.
    fn steps(&self) -> u64;

    // --- observation -------------------------------------------------------

    /// The client-observed TCS history.
    fn history(&self) -> TcsHistory;

    /// Latency (message delays, simulated microseconds, decision) of every
    /// decided transaction, as observed by the client.
    fn latencies(&self) -> BTreeMap<TxId, DecisionLatency>;

    /// Structural specification violations the client observed (duplicate
    /// certifies, contradictory decisions). Empty in a correct run.
    fn client_violations(&self) -> Vec<String>;

    /// A named metrics counter of the underlying simulation world.
    fn counter(&self, name: &str) -> u64;

    /// Mean of a named metrics sample series, if any samples were recorded.
    fn sample_mean(&self, name: &str) -> Option<f64>;

    /// Estimated percentile (`pct` in `0..=100`) of a named metrics sample
    /// series, from the streaming log-bucketed histogram every
    /// [`Summary`](ratc_sim::metrics::Summary) maintains (relative error
    /// ≤ ~9%). `None` if no samples were recorded.
    fn sample_percentile(&self, name: &str, pct: f64) -> Option<f64>;

    /// The unit of every latency and timestamp this cluster reports:
    /// [`LatencyUnit::VirtualMicros`] under
    /// [`ExecutionMode::Sim`], [`LatencyUnit::WallMicros`] under
    /// [`ExecutionMode::Threads`].
    fn latency_unit(&self) -> LatencyUnit;

    /// Raw transaction-lifecycle observability events, in recording order.
    /// Empty unless the cluster was built with observability enabled (see
    /// [`ClusterSpec::with_observability`](crate::ClusterSpec::with_observability)).
    fn obs_events(&self) -> Vec<TxObsEvent>;

    /// Per-transaction lifecycle timelines, folded from
    /// [`TcsCluster::obs_events`] and keyed by transaction.
    fn timelines(&self) -> BTreeMap<TxId, TxTimeline> {
        fold_timelines(&self.obs_events())
    }

    /// Per-phase latency attribution of every transaction whose timeline is
    /// complete (submission and client-learned decision both stamped). The
    /// phases of each breakdown sum exactly to its end-to-end latency, in
    /// the cluster's [`TcsCluster::latency_unit`].
    fn phase_breakdown(&self) -> BTreeMap<TxId, PhaseBreakdown> {
        self.timelines()
            .iter()
            .filter_map(|(tx, timeline)| {
                PhaseBreakdown::from_timeline(timeline).map(|breakdown| (*tx, breakdown))
            })
            .collect()
    }

    /// Raw control-plane observability events — reconfiguration milestones,
    /// crash/restart/recovery spans, leader and coordinator handoffs, and any
    /// harness-injected fault markers — in recording order. Empty unless the
    /// cluster was built with observability enabled (see
    /// [`ClusterSpec::with_observability`](crate::ClusterSpec::with_observability)).
    fn ctrl_events(&self) -> Vec<CtrlEvent>;

    /// Stamps a control-plane event into the cluster's event stream on behalf
    /// of an external harness. The chaos nemesis records
    /// [`CtrlMilestone::FaultInjected`] / [`CtrlMilestone::FaultHealed`] here
    /// so a single time-ordered forensic log merges protocol milestones with
    /// the faults that caused them. A no-op unless observability is enabled —
    /// it only appends to a metrics buffer and never touches the schedule.
    fn record_ctrl(
        &mut self,
        by: ProcessId,
        milestone: CtrlMilestone,
        shard: Option<ShardId>,
        note: &str,
    );

    /// Per-shard availability windows derived from the control-plane stream:
    /// each window opens at the first degrading event
    /// ([`CtrlMilestone::degrades`]) touching a shard and closes at the first
    /// transaction decided on that shard strictly after the last degrading
    /// event. Substrate events recorded without a shard (crashes and restarts
    /// are stamped by process) are attributed to the crashed process's shard
    /// via the initial roster and spare pools before the windows are computed.
    fn blackouts(&self) -> Vec<Blackout> {
        let mut shard_of: BTreeMap<ProcessId, ShardId> = BTreeMap::new();
        for shard in self.shards() {
            for pid in self
                .roster_of(shard)
                .into_iter()
                .chain(self.spares_of(shard))
            {
                shard_of.insert(pid, shard);
            }
        }
        let mut ctrl = self.ctrl_events();
        for event in &mut ctrl {
            if event.shard.is_none() {
                event.shard = shard_of.get(&event.by).copied();
            }
        }
        let decided = ratc_sim::decided_times_per_shard(&self.obs_events());
        ratc_sim::blackouts(&ctrl, &decided)
    }

    /// Per-message-type send/deliver counters (label → counts), sorted by
    /// message-type label. Empty unless observability is enabled.
    fn msg_type_counters(&self) -> Vec<(String, MsgTypeCounters)>;

    /// Messages handled (sent + received) by one process.
    fn process_handled(&self, pid: ProcessId) -> u64;

    // --- topology introspection --------------------------------------------

    /// All shards of this cluster.
    fn shards(&self) -> Vec<ShardId>;

    /// The shard map used by this cluster.
    fn sharding(&self) -> &HashSharding;

    /// The history-recording client process.
    fn client_id(&self) -> ProcessId;

    /// The configuration-service process, on stacks that have one.
    fn config_service_id(&self) -> Option<ProcessId>;

    /// The *current* members of `shard` (after any reconfigurations).
    fn members_of(&self, shard: ShardId) -> Vec<ProcessId>;

    /// The *current* leader of `shard`, if the shard has a configuration.
    fn leader_of(&self, shard: ShardId) -> Option<ProcessId>;

    /// The current epoch of `shard`. Global-epoch stacks report the global
    /// epoch for every shard; the baseline has no reconfiguration and always
    /// reports [`Epoch::ZERO`].
    fn epoch_of(&self, shard: ShardId) -> Epoch;

    /// The initial roster of `shard` (its members at construction time).
    fn roster_of(&self, shard: ShardId) -> Vec<ProcessId>;

    /// The spare (fresh) replicas of `shard` available to reconfiguration.
    fn spares_of(&self, shard: ShardId) -> Vec<ProcessId>;

    /// The processes a harness may hand submissions to: every replica and
    /// spare on the RATC stacks, the transaction-manager leader on the
    /// baseline.
    fn coordinator_pool(&self) -> Vec<ProcessId>;

    /// Every faultable protocol process (replicas, spares, and the
    /// transaction-manager group on the baseline) — excludes the client and
    /// the configuration service.
    fn all_processes(&self) -> Vec<ProcessId>;

    /// Whether `pid` is currently crashed.
    fn is_crashed(&self, pid: ProcessId) -> bool;

    // --- capabilities and protocol state ------------------------------------

    /// Whether the stack recovers from failures by reconfiguring (`f + 1`
    /// RATC stacks) rather than masking them with a quorum (the `2f + 1`
    /// baseline).
    fn supports_reconfiguration(&self) -> bool;

    /// Whether one reconfiguration involves the whole system (the §5 RDMA
    /// protocol) instead of a single shard.
    fn reconfiguration_is_global(&self) -> bool;

    /// Whether arbitrary replicas coordinate transactions (RATC) as opposed
    /// to a dedicated transaction-manager group (baseline).
    fn replicas_coordinate(&self) -> bool;

    /// Whether `pid` is ready to initiate work: initialised in the current
    /// configuration with no reconfiguration of its own in flight. On the
    /// baseline every non-crashed process is ready.
    fn replica_ready(&self, pid: ProcessId) -> bool;

    /// Whether `shard` looks fully operational: every current member live,
    /// initialised, at the current epoch, with the expected leader/follower
    /// status. Always `true` on the baseline (failures are masked; recovery
    /// is restart-driven).
    fn shard_operational(&self, shard: ShardId) -> bool;

    /// Transactions the current leader of `shard` holds prepared but
    /// undecided. Empty on the baseline (votes are decided by the TM).
    fn prepared_transactions(&self, shard: ShardId) -> Vec<TxId>;

    /// Physical certification-log slots (or undecided payloads, on the
    /// baseline) retained by `pid`, if `pid` keeps a shard log.
    fn retained_log_slots(&self, pid: ProcessId) -> Option<usize>;

    /// Logical certification-log length at `pid` — what retention would be
    /// without truncation/pruning — if `pid` keeps a shard log.
    fn logical_log_len(&self, pid: ProcessId) -> Option<u64>;

    // --- fault plane --------------------------------------------------------

    /// Installs a probabilistic fault on the directed link `from → to`.
    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: LinkFault);

    /// Installs (or clears) fabric-wide background noise.
    fn set_default_link_fault(&mut self, fault: Option<LinkFault>);

    /// Installs a named partition: traffic between different groups drops.
    fn install_partition(&mut self, name: &str, groups: Vec<Vec<ProcessId>>);

    /// Heals every link fault, cut and partition (crashed processes stay
    /// crashed).
    fn heal_all_faults(&mut self);

    /// Exempts a process from all fault injection (used for the
    /// history-recording client — the measurement apparatus).
    fn mark_fault_exempt(&mut self, pid: ProcessId);
}

// ---------------------------------------------------------------------------
// ratc-core (§3 message passing)
// ---------------------------------------------------------------------------

impl TcsCluster for Cluster {
    fn stack(&self) -> StackKind {
        StackKind::Core
    }

    fn submit(&mut self, tx: TxId, payload: Payload) -> ProcessId {
        Cluster::submit(self, tx, payload)
    }

    fn submit_via(&mut self, tx: TxId, payload: Payload, coordinator: ProcessId) {
        Cluster::submit_via(self, tx, payload, coordinator);
    }

    fn resubmit(&mut self, tx: TxId, payload: Payload) {
        Cluster::resubmit(self, tx, payload);
    }

    fn retry(&mut self, replica: ProcessId, tx: TxId) {
        Cluster::retry(self, replica, tx);
    }

    fn crash(&mut self, pid: ProcessId) {
        Cluster::crash(self, pid);
    }

    fn restart(&mut self, pid: ProcessId) -> bool {
        Cluster::restart(self, pid)
    }

    fn start_reconfiguration(
        &mut self,
        shard: ShardId,
        initiator: ProcessId,
        exclude: Vec<ProcessId>,
    ) {
        Cluster::start_reconfiguration(self, shard, initiator, exclude);
    }

    fn run_to_quiescence(&mut self) {
        Cluster::run_to_quiescence(self);
    }

    fn run_for(&mut self, duration: SimDuration) {
        Cluster::run_for(self, duration);
    }

    fn run_until(&mut self, until: SimTime) {
        Cluster::run_until(self, until);
    }

    fn now(&self) -> SimTime {
        self.world.now()
    }

    fn steps(&self) -> u64 {
        self.world.steps()
    }

    fn history(&self) -> TcsHistory {
        Cluster::history(self)
    }

    fn latencies(&self) -> BTreeMap<TxId, DecisionLatency> {
        Cluster::latencies(self)
    }

    fn client_violations(&self) -> Vec<String> {
        Cluster::client_violations(self)
    }

    fn counter(&self, name: &str) -> u64 {
        self.world.metrics().counter(name)
    }

    fn sample_mean(&self, name: &str) -> Option<f64> {
        self.world.metrics().summary(name).map(|s| s.mean())
    }

    fn sample_percentile(&self, name: &str, pct: f64) -> Option<f64> {
        self.world
            .metrics()
            .summary(name)
            .map(|s| s.percentile(pct))
    }

    fn latency_unit(&self) -> LatencyUnit {
        match Cluster::execution(self) {
            ExecutionMode::Sim => LatencyUnit::VirtualMicros,
            ExecutionMode::Threads => LatencyUnit::WallMicros,
        }
    }

    fn obs_events(&self) -> Vec<TxObsEvent> {
        self.world.metrics().obs_events().to_vec()
    }

    fn ctrl_events(&self) -> Vec<CtrlEvent> {
        self.world.metrics().ctrl_events().to_vec()
    }

    fn record_ctrl(
        &mut self,
        by: ProcessId,
        milestone: CtrlMilestone,
        shard: Option<ShardId>,
        note: &str,
    ) {
        self.world.ctrl_milestone(by, milestone, shard, note);
    }

    fn msg_type_counters(&self) -> Vec<(String, MsgTypeCounters)> {
        self.world
            .metrics()
            .msg_type_counters()
            .map(|(label, counters)| (label.to_owned(), counters))
            .collect()
    }

    fn process_handled(&self, pid: ProcessId) -> u64 {
        self.world.metrics().process(pid).handled()
    }

    fn shards(&self) -> Vec<ShardId> {
        Cluster::shards(self)
    }

    fn sharding(&self) -> &HashSharding {
        Cluster::sharding(self)
    }

    fn client_id(&self) -> ProcessId {
        Cluster::client_id(self)
    }

    fn config_service_id(&self) -> Option<ProcessId> {
        Some(Cluster::config_service_id(self))
    }

    fn members_of(&self, shard: ShardId) -> Vec<ProcessId> {
        self.current_members(shard)
    }

    fn leader_of(&self, shard: ShardId) -> Option<ProcessId> {
        if self.current_members(shard).is_empty() {
            None
        } else {
            Some(self.current_leader(shard))
        }
    }

    fn epoch_of(&self, shard: ShardId) -> Epoch {
        if self.current_members(shard).is_empty() {
            Epoch::ZERO
        } else {
            self.current_epoch(shard)
        }
    }

    fn roster_of(&self, shard: ShardId) -> Vec<ProcessId> {
        self.initial_members(shard).to_vec()
    }

    fn spares_of(&self, shard: ShardId) -> Vec<ProcessId> {
        Cluster::spares(self, shard).to_vec()
    }

    fn coordinator_pool(&self) -> Vec<ProcessId> {
        TcsCluster::all_processes(self)
    }

    fn all_processes(&self) -> Vec<ProcessId> {
        let mut all = Vec::new();
        for shard in Cluster::shards(self) {
            all.extend(self.initial_members(shard));
            all.extend(Cluster::spares(self, shard));
        }
        all
    }

    fn is_crashed(&self, pid: ProcessId) -> bool {
        self.world.is_crashed(pid)
    }

    fn supports_reconfiguration(&self) -> bool {
        true
    }

    fn reconfiguration_is_global(&self) -> bool {
        false
    }

    fn replicas_coordinate(&self) -> bool {
        true
    }

    fn replica_ready(&self, pid: ProcessId) -> bool {
        self.world
            .actor::<Replica>(pid)
            .map(|r| r.is_initialized() && !r.reconfiguration_in_flight())
            .unwrap_or(false)
    }

    fn shard_operational(&self, shard: ShardId) -> bool {
        let members = self.current_members(shard);
        if members.is_empty() {
            return false;
        }
        let leader = self.current_leader(shard);
        let epoch = self.current_epoch(shard);
        members.iter().all(|m| {
            if self.world.is_crashed(*m) {
                return false;
            }
            let Some(replica) = self.world.actor::<Replica>(*m) else {
                return false;
            };
            let expected = if *m == leader {
                Status::Leader
            } else {
                Status::Follower
            };
            replica.is_initialized()
                && replica.epoch_of(shard) == epoch
                && replica.status() == expected
        })
    }

    fn prepared_transactions(&self, shard: ShardId) -> Vec<TxId> {
        let Some(leader) = TcsCluster::leader_of(self, shard) else {
            return Vec::new();
        };
        self.replica(leader)
            .log()
            .entries()
            .filter(|(_, e)| e.phase == TxPhase::Prepared)
            .map(|(_, e)| e.tx)
            .collect()
    }

    fn retained_log_slots(&self, pid: ProcessId) -> Option<usize> {
        self.world.actor::<Replica>(pid).map(|r| r.log().len())
    }

    fn logical_log_len(&self, pid: ProcessId) -> Option<u64> {
        self.world
            .actor::<Replica>(pid)
            .map(|r| r.log().next().as_u64())
    }

    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: LinkFault) {
        self.world.set_link_fault(from, to, fault);
    }

    fn set_default_link_fault(&mut self, fault: Option<LinkFault>) {
        self.world.set_default_link_fault(fault);
    }

    fn install_partition(&mut self, name: &str, groups: Vec<Vec<ProcessId>>) {
        self.world.install_partition(name, groups);
    }

    fn heal_all_faults(&mut self) {
        self.world.heal_all_faults();
    }

    fn mark_fault_exempt(&mut self, pid: ProcessId) {
        self.world.mark_fault_exempt(pid);
    }
}

// ---------------------------------------------------------------------------
// ratc-rdma (§5 RDMA, correct global or naive per-shard reconfiguration)
// ---------------------------------------------------------------------------

impl TcsCluster for RdmaCluster {
    fn stack(&self) -> StackKind {
        match self.mode() {
            ReconfigMode::GlobalCorrect => StackKind::Rdma,
            ReconfigMode::NaivePerShard => StackKind::RdmaNaive,
        }
    }

    fn submit(&mut self, tx: TxId, payload: Payload) -> ProcessId {
        RdmaCluster::submit(self, tx, payload)
    }

    fn submit_via(&mut self, tx: TxId, payload: Payload, coordinator: ProcessId) {
        RdmaCluster::submit_via(self, tx, payload, coordinator);
    }

    fn resubmit(&mut self, tx: TxId, payload: Payload) {
        RdmaCluster::resubmit(self, tx, payload);
    }

    fn retry(&mut self, replica: ProcessId, tx: TxId) {
        RdmaCluster::retry(self, replica, tx);
    }

    fn crash(&mut self, pid: ProcessId) {
        RdmaCluster::crash(self, pid);
    }

    fn restart(&mut self, pid: ProcessId) -> bool {
        RdmaCluster::restart(self, pid)
    }

    fn start_reconfiguration(
        &mut self,
        shard: ShardId,
        initiator: ProcessId,
        exclude: Vec<ProcessId>,
    ) {
        RdmaCluster::start_reconfiguration(self, shard, initiator, exclude);
    }

    fn run_to_quiescence(&mut self) {
        RdmaCluster::run_to_quiescence(self);
    }

    fn run_for(&mut self, duration: SimDuration) {
        RdmaCluster::run_for(self, duration);
    }

    fn run_until(&mut self, until: SimTime) {
        RdmaCluster::run_until(self, until);
    }

    fn now(&self) -> SimTime {
        self.world.now()
    }

    fn steps(&self) -> u64 {
        self.world.steps()
    }

    fn history(&self) -> TcsHistory {
        RdmaCluster::history(self)
    }

    fn latencies(&self) -> BTreeMap<TxId, DecisionLatency> {
        RdmaCluster::latencies(self)
    }

    fn client_violations(&self) -> Vec<String> {
        RdmaCluster::client_violations(self)
    }

    fn counter(&self, name: &str) -> u64 {
        self.world.metrics().counter(name)
    }

    fn sample_mean(&self, name: &str) -> Option<f64> {
        self.world.metrics().summary(name).map(|s| s.mean())
    }

    fn sample_percentile(&self, name: &str, pct: f64) -> Option<f64> {
        self.world
            .metrics()
            .summary(name)
            .map(|s| s.percentile(pct))
    }

    fn latency_unit(&self) -> LatencyUnit {
        match RdmaCluster::execution(self) {
            ExecutionMode::Sim => LatencyUnit::VirtualMicros,
            ExecutionMode::Threads => LatencyUnit::WallMicros,
        }
    }

    fn obs_events(&self) -> Vec<TxObsEvent> {
        self.world.metrics().obs_events().to_vec()
    }

    fn ctrl_events(&self) -> Vec<CtrlEvent> {
        self.world.metrics().ctrl_events().to_vec()
    }

    fn record_ctrl(
        &mut self,
        by: ProcessId,
        milestone: CtrlMilestone,
        shard: Option<ShardId>,
        note: &str,
    ) {
        self.world.ctrl_milestone(by, milestone, shard, note);
    }

    fn msg_type_counters(&self) -> Vec<(String, MsgTypeCounters)> {
        self.world
            .metrics()
            .msg_type_counters()
            .map(|(label, counters)| (label.to_owned(), counters))
            .collect()
    }

    fn process_handled(&self, pid: ProcessId) -> u64 {
        self.world.metrics().process(pid).handled()
    }

    fn shards(&self) -> Vec<ShardId> {
        self.current_config().members.keys().copied().collect()
    }

    fn sharding(&self) -> &HashSharding {
        RdmaCluster::sharding(self)
    }

    fn client_id(&self) -> ProcessId {
        RdmaCluster::client_id(self)
    }

    fn config_service_id(&self) -> Option<ProcessId> {
        Some(RdmaCluster::config_service_id(self))
    }

    fn members_of(&self, shard: ShardId) -> Vec<ProcessId> {
        self.current_config().members_of(shard).to_vec()
    }

    fn leader_of(&self, shard: ShardId) -> Option<ProcessId> {
        self.current_config().leader_of(shard)
    }

    fn epoch_of(&self, _shard: ShardId) -> Epoch {
        // The §5 protocol maintains one global epoch for the whole system.
        self.current_config().epoch
    }

    fn roster_of(&self, shard: ShardId) -> Vec<ProcessId> {
        self.initial_members(shard).to_vec()
    }

    fn spares_of(&self, shard: ShardId) -> Vec<ProcessId> {
        RdmaCluster::spares(self, shard).to_vec()
    }

    fn coordinator_pool(&self) -> Vec<ProcessId> {
        TcsCluster::all_processes(self)
    }

    fn all_processes(&self) -> Vec<ProcessId> {
        let mut all = Vec::new();
        for shard in TcsCluster::shards(self) {
            all.extend(self.initial_members(shard));
            all.extend(RdmaCluster::spares(self, shard));
        }
        all
    }

    fn is_crashed(&self, pid: ProcessId) -> bool {
        self.world.is_crashed(pid)
    }

    fn supports_reconfiguration(&self) -> bool {
        true
    }

    fn reconfiguration_is_global(&self) -> bool {
        // Both modes share the §5 entry point: one `StartReconfigure`
        // carries the spare pools of every shard and excludes crashed
        // members system-wide. What differs is the *activation*: the naive
        // mode then (incorrectly) installs configurations per shard — the
        // Figure 4a bug under study — while the correct mode probes the
        // whole system.
        true
    }

    fn replicas_coordinate(&self) -> bool {
        true
    }

    fn replica_ready(&self, pid: ProcessId) -> bool {
        self.world
            .actor::<RdmaReplica>(pid)
            .map(|r| r.is_initialized() && !r.reconfiguration_in_flight())
            .unwrap_or(false)
    }

    fn shard_operational(&self, shard: ShardId) -> bool {
        let config = self.current_config();
        let members = config.members_of(shard);
        if members.is_empty() {
            return false;
        }
        let leader = config.leader_of(shard);
        members.iter().all(|m| {
            if self.world.is_crashed(*m) {
                return false;
            }
            let Some(replica) = self.world.actor::<RdmaReplica>(*m) else {
                return false;
            };
            let expected = if Some(*m) == leader {
                RdmaStatus::Leader
            } else {
                RdmaStatus::Follower
            };
            replica.is_initialized()
                && replica.epoch() == config.epoch
                && replica.status() == expected
        })
    }

    fn prepared_transactions(&self, shard: ShardId) -> Vec<TxId> {
        let Some(leader) = TcsCluster::leader_of(self, shard) else {
            return Vec::new();
        };
        self.replica(leader)
            .log()
            .entries()
            .filter(|(_, e)| e.phase == TxPhase::Prepared)
            .map(|(_, e)| e.tx)
            .collect()
    }

    fn retained_log_slots(&self, pid: ProcessId) -> Option<usize> {
        self.world.actor::<RdmaReplica>(pid).map(|r| r.log().len())
    }

    fn logical_log_len(&self, pid: ProcessId) -> Option<u64> {
        self.world
            .actor::<RdmaReplica>(pid)
            .map(|r| r.log().next().as_u64())
    }

    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: LinkFault) {
        self.world.set_link_fault(from, to, fault);
    }

    fn set_default_link_fault(&mut self, fault: Option<LinkFault>) {
        self.world.set_default_link_fault(fault);
    }

    fn install_partition(&mut self, name: &str, groups: Vec<Vec<ProcessId>>) {
        self.world.install_partition(name, groups);
    }

    fn heal_all_faults(&mut self) {
        self.world.heal_all_faults();
    }

    fn mark_fault_exempt(&mut self, pid: ProcessId) {
        self.world.mark_fault_exempt(pid);
    }
}

// ---------------------------------------------------------------------------
// ratc-baseline (2PC over Multi-Paxos)
// ---------------------------------------------------------------------------

impl TcsCluster for BaselineCluster {
    fn stack(&self) -> StackKind {
        StackKind::Baseline
    }

    fn submit(&mut self, tx: TxId, payload: Payload) -> ProcessId {
        BaselineCluster::submit(self, tx, payload)
    }

    fn submit_via(&mut self, tx: TxId, payload: Payload, coordinator: ProcessId) {
        BaselineCluster::submit_via(self, tx, payload, coordinator);
    }

    fn resubmit(&mut self, tx: TxId, payload: Payload) {
        BaselineCluster::resubmit(self, tx, payload);
    }

    fn retry(&mut self, _replica: ProcessId, _tx: TxId) {
        // The baseline's transaction manager re-drives in-flight 2PC through
        // its own retry timer; there is no per-replica recovery coordinator.
    }

    fn crash(&mut self, pid: ProcessId) {
        BaselineCluster::crash(self, pid);
    }

    fn restart(&mut self, pid: ProcessId) -> bool {
        BaselineCluster::restart(self, pid)
    }

    fn start_reconfiguration(
        &mut self,
        _shard: ShardId,
        _initiator: ProcessId,
        _exclude: Vec<ProcessId>,
    ) {
        // No reconfiguration machinery: `2f + 1` Paxos quorums mask
        // failures, and crashed processes recover only by restarting.
    }

    fn run_to_quiescence(&mut self) {
        BaselineCluster::run_to_quiescence(self);
    }

    fn run_for(&mut self, duration: SimDuration) {
        BaselineCluster::run_for(self, duration);
    }

    fn run_until(&mut self, until: SimTime) {
        BaselineCluster::run_until(self, until);
    }

    fn now(&self) -> SimTime {
        self.world.now()
    }

    fn steps(&self) -> u64 {
        self.world.steps()
    }

    fn history(&self) -> TcsHistory {
        BaselineCluster::history(self)
    }

    fn latencies(&self) -> BTreeMap<TxId, DecisionLatency> {
        BaselineCluster::latencies(self)
    }

    fn client_violations(&self) -> Vec<String> {
        BaselineCluster::client_violations(self)
    }

    fn counter(&self, name: &str) -> u64 {
        self.world.metrics().counter(name)
    }

    fn sample_mean(&self, name: &str) -> Option<f64> {
        self.world.metrics().summary(name).map(|s| s.mean())
    }

    fn sample_percentile(&self, name: &str, pct: f64) -> Option<f64> {
        self.world
            .metrics()
            .summary(name)
            .map(|s| s.percentile(pct))
    }

    fn latency_unit(&self) -> LatencyUnit {
        match BaselineCluster::execution(self) {
            ExecutionMode::Sim => LatencyUnit::VirtualMicros,
            ExecutionMode::Threads => LatencyUnit::WallMicros,
        }
    }

    fn obs_events(&self) -> Vec<TxObsEvent> {
        self.world.metrics().obs_events().to_vec()
    }

    fn ctrl_events(&self) -> Vec<CtrlEvent> {
        self.world.metrics().ctrl_events().to_vec()
    }

    fn record_ctrl(
        &mut self,
        by: ProcessId,
        milestone: CtrlMilestone,
        shard: Option<ShardId>,
        note: &str,
    ) {
        self.world.ctrl_milestone(by, milestone, shard, note);
    }

    fn msg_type_counters(&self) -> Vec<(String, MsgTypeCounters)> {
        self.world
            .metrics()
            .msg_type_counters()
            .map(|(label, counters)| (label.to_owned(), counters))
            .collect()
    }

    fn process_handled(&self, pid: ProcessId) -> u64 {
        self.world.metrics().process(pid).handled()
    }

    fn shards(&self) -> Vec<ShardId> {
        ShardMap::shards(BaselineCluster::sharding(self))
    }

    fn sharding(&self) -> &HashSharding {
        BaselineCluster::sharding(self)
    }

    fn client_id(&self) -> ProcessId {
        BaselineCluster::client_id(self)
    }

    fn config_service_id(&self) -> Option<ProcessId> {
        None
    }

    fn members_of(&self, shard: ShardId) -> Vec<ProcessId> {
        self.shard_group(shard).to_vec()
    }

    fn leader_of(&self, shard: ShardId) -> Option<ProcessId> {
        if self.shard_group(shard).is_empty() {
            None
        } else {
            Some(self.shard_leader(shard))
        }
    }

    fn epoch_of(&self, _shard: ShardId) -> Epoch {
        // Static membership: configurations never change.
        Epoch::ZERO
    }

    fn roster_of(&self, shard: ShardId) -> Vec<ProcessId> {
        self.shard_group(shard).to_vec()
    }

    fn spares_of(&self, _shard: ShardId) -> Vec<ProcessId> {
        Vec::new()
    }

    fn coordinator_pool(&self) -> Vec<ProcessId> {
        // The whole group coordinates: the leader directly, every other
        // member by forwarding `CERTIFY` to it. The leader comes first so
        // callers wanting the cheapest coordinator can take the pool head.
        let mut pool = vec![self.tm_leader()];
        pool.extend(self.tm_group().iter().filter(|p| **p != self.tm_leader()));
        pool
    }

    fn all_processes(&self) -> Vec<ProcessId> {
        let mut all = Vec::new();
        for shard in TcsCluster::shards(self) {
            all.extend(self.shard_group(shard));
        }
        all.extend(self.tm_group());
        all
    }

    fn is_crashed(&self, pid: ProcessId) -> bool {
        self.world.is_crashed(pid)
    }

    fn supports_reconfiguration(&self) -> bool {
        false
    }

    fn reconfiguration_is_global(&self) -> bool {
        false
    }

    fn replicas_coordinate(&self) -> bool {
        false
    }

    fn replica_ready(&self, pid: ProcessId) -> bool {
        !self.world.is_crashed(pid)
    }

    fn shard_operational(&self, _shard: ShardId) -> bool {
        // Minority failures are masked by the Paxos quorum; anything worse
        // is repaired by restarting, not by reconfiguration.
        true
    }

    fn prepared_transactions(&self, _shard: ShardId) -> Vec<TxId> {
        Vec::new()
    }

    fn retained_log_slots(&self, pid: ProcessId) -> Option<usize> {
        self.world
            .actor::<BaselineShardReplica>(pid)
            .map(|r| r.retained_payloads())
    }

    fn logical_log_len(&self, pid: ProcessId) -> Option<u64> {
        self.world
            .actor::<BaselineShardReplica>(pid)
            .map(|r| r.chosen_slots() as u64)
    }

    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: LinkFault) {
        self.world.set_link_fault(from, to, fault);
    }

    fn set_default_link_fault(&mut self, fault: Option<LinkFault>) {
        self.world.set_default_link_fault(fault);
    }

    fn install_partition(&mut self, name: &str, groups: Vec<Vec<ProcessId>>) {
        self.world.install_partition(name, groups);
    }

    fn heal_all_faults(&mut self) {
        self.world.heal_all_faults();
    }

    fn mark_fault_exempt(&mut self, pid: ProcessId) {
        self.world.mark_fault_exempt(pid);
    }
}
