//! Acceptance tests for the commit-path observability layer.
//!
//! The contract under test:
//!
//! 1. **Zero-cost when disabled, invisible when enabled** — enabling
//!    observability must not perturb a seeded simulation: same seed, same
//!    schedule, same step count, same histories and latencies, bit for bit.
//! 2. **Engine-agnostic timelines** — the same protocol code stamps the same
//!    lifecycle milestones under `ExecutionMode::Sim` and
//!    `ExecutionMode::Threads`; only the clock differs.
//! 3. **Exact attribution** — for every complete timeline the six phase
//!    latencies sum *exactly* to the end-to-end latency, on every stack,
//!    under randomized workloads.

use std::collections::BTreeMap;

use ratc_harness::{ClusterSpec, StackKind, TcsCluster};
use ratc_sim::{ExecutionMode, LatencyUnit, PhaseBreakdown, TxMilestone};
use ratc_types::{Key, Payload, TxId, Value, Version};

const STACKS: [StackKind; 3] = [StackKind::Core, StackKind::Rdma, StackKind::Baseline];

fn payload(i: u64, keys: u64) -> Payload {
    let key = Key::new(format!("k{}", i % keys));
    Payload::builder()
        .read(key.clone(), Version::ZERO)
        .write(key, Value::from("v"))
        .commit_version(Version::new(1))
        .build()
        .expect("well-formed")
}

fn run_sim(stack: StackKind, seed: u64, txs: u64, observability: bool) -> Box<dyn TcsCluster> {
    let mut spec = ClusterSpec::new(stack).with_shards(2).with_seed(seed);
    if observability {
        spec = spec.with_observability();
    }
    let mut cluster = spec.build();
    for i in 1..=txs {
        // Disjoint key space: every transaction commits, so complete
        // timelines exist for the whole workload.
        cluster.submit(TxId::new(i), payload(i + 1000 * i, u64::MAX));
    }
    cluster.run_to_quiescence();
    cluster
}

/// Contract 1: observability never perturbs a seeded schedule. The step
/// count fingerprints the entire event order, so equality there plus
/// identical histories and latencies means the runs were bit-identical.
#[test]
fn enabling_observability_keeps_seeded_runs_bit_identical() {
    for stack in STACKS {
        for seed in [7u64, 42] {
            let off = run_sim(stack, seed, 24, false);
            let on = run_sim(stack, seed, 24, true);
            assert_eq!(
                off.steps(),
                on.steps(),
                "{stack} seed={seed}: observability changed the schedule"
            );
            assert_eq!(off.now(), on.now(), "{stack} seed={seed}: clocks differ");
            assert_eq!(
                off.history(),
                on.history(),
                "{stack} seed={seed}: histories differ"
            );
            let off_latencies: Vec<(TxId, u64)> = off
                .latencies()
                .iter()
                .map(|(t, l)| (*t, l.micros))
                .collect();
            let on_latencies: Vec<(TxId, u64)> =
                on.latencies().iter().map(|(t, l)| (*t, l.micros)).collect();
            assert_eq!(
                off_latencies, on_latencies,
                "{stack} seed={seed}: latencies differ"
            );
            // And the switch actually does something: off records nothing,
            // on records a complete timeline per transaction.
            assert!(off.obs_events().is_empty(), "{stack}: events while off");
            assert_eq!(on.timelines().len(), 24, "{stack}: missing timelines");
        }
    }
}

/// The ordered lifecycle milestones of one timeline (annotations like
/// `Retry`/`BatchFlush` excluded).
fn lifecycle_of(timeline: &ratc_sim::TxTimeline) -> Vec<TxMilestone> {
    let mut seen = Vec::new();
    for event in timeline.events() {
        if matches!(
            event.milestone,
            TxMilestone::Retry | TxMilestone::BatchFlush
        ) {
            continue;
        }
        if !seen.contains(&event.milestone) {
            seen.push(event.milestone);
        }
    }
    seen
}

/// Contract 2: the threaded backend stamps the same milestone sets the
/// simulator does, with monotone lifecycle timestamps — only the clock (and
/// the reported [`LatencyUnit`]) differs.
#[test]
fn sim_and_threads_agree_on_timeline_milestones() {
    for stack in STACKS {
        let sim = run_sim(stack, 11, 16, true);
        assert_eq!(sim.latency_unit(), LatencyUnit::VirtualMicros);

        let mut threaded = ClusterSpec::new(stack)
            .with_shards(2)
            .with_seed(11)
            .with_execution(ExecutionMode::Threads)
            .with_observability()
            .build();
        for i in 1..=16u64 {
            threaded.submit(TxId::new(i), payload(i + 1000 * i, u64::MAX));
        }
        threaded.run_to_quiescence();
        assert_eq!(threaded.latency_unit(), LatencyUnit::WallMicros);

        let sim_timelines = sim.timelines();
        let threaded_timelines = threaded.timelines();
        assert_eq!(
            sim_timelines.len(),
            threaded_timelines.len(),
            "{stack}: timeline counts differ across engines"
        );
        for (tx, sim_timeline) in &sim_timelines {
            let threaded_timeline = threaded_timelines
                .get(tx)
                .unwrap_or_else(|| panic!("{stack}: tx {tx:?} missing on threads"));
            let sim_milestones = lifecycle_of(sim_timeline);
            let threaded_milestones = lifecycle_of(threaded_timeline);
            // Uncontended disjoint workload, no faults: both engines walk
            // the same protocol path, so the milestone sets match exactly.
            assert_eq!(
                sim_milestones, threaded_milestones,
                "{stack} tx {tx:?}: milestone sets differ across engines"
            );
            assert_eq!(
                sim_milestones.first(),
                Some(&TxMilestone::Submitted),
                "{stack} tx {tx:?}"
            );
            assert_eq!(
                sim_milestones.last(),
                Some(&TxMilestone::ClientLearned),
                "{stack} tx {tx:?}"
            );
            // Lifecycle timestamps are monotone in lifecycle order on both
            // engines (first occurrence per milestone).
            for timeline in [sim_timeline, threaded_timeline] {
                let mut last = 0u64;
                for milestone in &sim_milestones {
                    let at = timeline
                        .events()
                        .iter()
                        .find(|e| e.milestone == *milestone)
                        .expect("milestone present")
                        .at_micros;
                    assert!(
                        at >= last,
                        "{stack} tx {tx:?}: {milestone} out of order ({at} < {last})"
                    );
                    last = at;
                }
            }
        }
    }
}

/// Contract 3 (property): phases sum exactly to the end-to-end latency on
/// every complete timeline, across stacks, seeds and load levels — including
/// overload, where retries and admission queueing stretch the timeline.
#[test]
fn phase_breakdowns_sum_exactly_to_end_to_end_latency() {
    for stack in STACKS {
        for (seed, txs, keys) in [(1u64, 8u64, u64::MAX), (2, 48, u64::MAX), (3, 96, 16)] {
            let mut cluster = ClusterSpec::new(stack)
                .with_shards(2)
                .with_seed(seed)
                .with_observability()
                .build();
            for i in 1..=txs {
                cluster.submit(TxId::new(i), payload(i, keys));
            }
            cluster.run_to_quiescence();
            let timelines = cluster.timelines();
            let breakdowns: BTreeMap<TxId, PhaseBreakdown> = cluster.phase_breakdown();
            assert!(
                !breakdowns.is_empty(),
                "{stack} seed={seed}: no complete timelines"
            );
            for (tx, breakdown) in &breakdowns {
                assert_eq!(
                    breakdown.phases().iter().sum::<u64>(),
                    breakdown.total_micros(),
                    "{stack} seed={seed} tx {tx:?}: phases do not sum to total"
                );
                let timeline = &timelines[tx];
                let submitted = timeline.first(TxMilestone::Submitted).expect("complete");
                let learned = timeline.last(TxMilestone::ClientLearned).expect("complete");
                assert_eq!(
                    breakdown.total_micros(),
                    learned - submitted,
                    "{stack} seed={seed} tx {tx:?}: total is not end-to-end"
                );
            }
        }
    }
}
