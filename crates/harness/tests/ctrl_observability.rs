//! Acceptance tests for the control-plane observability stream.
//!
//! The contract under test:
//!
//! 1. **Schedule-invisible** — enabling control-plane observability must not
//!    perturb a seeded run, even one that crashes a replica, reconfigures a
//!    shard and restarts the crashed process: same seed, same step count,
//!    same histories and latencies, bit for bit. Off, the ctrl stream is
//!    empty; on, it carries the full reconfiguration lifecycle.
//! 2. **Engine-agnostic stamps** — the same protocol code records the same
//!    control-plane milestones under `ExecutionMode::Sim` and
//!    `ExecutionMode::Threads`; only the clock differs.
//! 3. **Bracketed windows** — every closed per-shard blackout opens exactly
//!    at a degrading control-plane event and closes at a transaction decided
//!    on that shard strictly after the last degrading event: the window
//!    nests inside its enclosing fault→heal span.

use std::collections::BTreeSet;

use ratc_harness::{ClusterSpec, StackKind, TcsCluster};
use ratc_sim::{decided_times_per_shard, CtrlMilestone, ExecutionMode};
use ratc_types::{Key, Payload, ShardId, TxId, Value, Version};

const STACKS: [StackKind; 3] = [StackKind::Core, StackKind::Rdma, StackKind::Baseline];

fn payload(i: u64) -> Payload {
    let key = Key::new(format!("k{i}"));
    Payload::builder()
        .read(key.clone(), Version::ZERO)
        .write(key, Value::from("v"))
        .commit_version(Version::new(1))
        .build()
        .expect("well-formed")
}

/// Drives one faulty run: traffic, crash a follower, reconfigure around it
/// (where the stack supports reconfiguration), restart it, more traffic.
/// Every decision the driver makes depends only on cluster state, so two
/// clusters built from the same seed see the identical call sequence.
fn run_faulty(
    stack: StackKind,
    seed: u64,
    mode: ExecutionMode,
    observability: bool,
) -> Box<dyn TcsCluster> {
    let mut spec = ClusterSpec::new(stack)
        .with_shards(2)
        .with_seed(seed)
        .with_execution(mode);
    if observability {
        spec = spec.with_observability();
    }
    let mut cluster = spec.build();
    for i in 1..=12u64 {
        cluster.submit(TxId::new(i), payload(i));
    }
    cluster.run_to_quiescence();

    let shard = ShardId::new(0);
    let leader = cluster.leader_of(shard).expect("shard has a leader");
    let follower = cluster
        .members_of(shard)
        .into_iter()
        .find(|p| *p != leader)
        .expect("shard has a follower");
    cluster.crash(follower);
    if cluster.supports_reconfiguration() {
        cluster.start_reconfiguration(shard, leader, vec![follower]);
        cluster.run_to_quiescence();
    }
    for i in 13..=20u64 {
        cluster.submit(TxId::new(i), payload(i));
    }
    cluster.run_to_quiescence();

    assert!(cluster.restart(follower), "restart of crashed follower");
    cluster.run_to_quiescence();
    for i in 21..=24u64 {
        cluster.submit(TxId::new(i), payload(i));
    }
    cluster.run_to_quiescence();
    cluster
}

fn milestones_of(cluster: &dyn TcsCluster) -> BTreeSet<CtrlMilestone> {
    cluster.ctrl_events().iter().map(|e| e.milestone).collect()
}

/// Contract 1: the ctrl stream never perturbs a seeded schedule, even across
/// a crash → reconfigure → restart sequence, and it is strictly opt-in.
#[test]
fn enabling_ctrl_observability_keeps_faulty_seeded_runs_bit_identical() {
    for stack in STACKS {
        for seed in [7u64, 42] {
            let off = run_faulty(stack, seed, ExecutionMode::Sim, false);
            let on = run_faulty(stack, seed, ExecutionMode::Sim, true);
            assert_eq!(
                off.steps(),
                on.steps(),
                "{stack} seed={seed}: ctrl observability changed the schedule"
            );
            assert_eq!(off.now(), on.now(), "{stack} seed={seed}: clocks differ");
            assert_eq!(
                off.history(),
                on.history(),
                "{stack} seed={seed}: histories differ"
            );
            let off_latencies: Vec<(TxId, u64)> = off
                .latencies()
                .iter()
                .map(|(t, l)| (*t, l.micros))
                .collect();
            let on_latencies: Vec<(TxId, u64)> =
                on.latencies().iter().map(|(t, l)| (*t, l.micros)).collect();
            assert_eq!(
                off_latencies, on_latencies,
                "{stack} seed={seed}: latencies differ"
            );

            // Off records nothing; on records the crash, the restart, and —
            // on reconfiguring stacks — the reconfiguration lifecycle.
            assert!(
                off.ctrl_events().is_empty(),
                "{stack} seed={seed}: ctrl events while off"
            );
            let milestones = milestones_of(on.as_ref());
            assert!(
                milestones.contains(&CtrlMilestone::Crash),
                "{stack} seed={seed}: crash not stamped ({milestones:?})"
            );
            assert!(
                milestones.contains(&CtrlMilestone::Restart),
                "{stack} seed={seed}: restart not stamped ({milestones:?})"
            );
            if on.supports_reconfiguration() {
                for required in [
                    CtrlMilestone::ReconfigInitiated,
                    CtrlMilestone::ConfigChosen,
                    CtrlMilestone::ShardOperational,
                ] {
                    assert!(
                        milestones.contains(&required),
                        "{stack} seed={seed}: {required} not stamped ({milestones:?})"
                    );
                }
            }
            // Sim-engine recording order is virtual-time order.
            let events = on.ctrl_events();
            for pair in events.windows(2) {
                assert!(
                    pair[0].at_micros <= pair[1].at_micros,
                    "{stack} seed={seed}: ctrl stream out of order"
                );
            }
        }
    }
}

/// Contract 2: the threaded backend stamps the same control-plane lifecycle
/// the simulator does for the same scenario — the stream is a property of
/// the protocol, not of the engine.
#[test]
fn sim_and_threads_stamp_the_same_ctrl_lifecycle() {
    for stack in STACKS {
        let sim = run_faulty(stack, 11, ExecutionMode::Sim, true);
        let threaded = run_faulty(stack, 11, ExecutionMode::Threads, true);
        let sim_milestones = milestones_of(sim.as_ref());
        let threaded_milestones = milestones_of(threaded.as_ref());
        // Both engines walk the same crash → reconfigure → restart path; the
        // core lifecycle stamps must agree (timing-dependent annotations
        // like coordinator handoff may differ under real concurrency).
        let mut required: Vec<CtrlMilestone> = vec![CtrlMilestone::Crash, CtrlMilestone::Restart];
        if sim.supports_reconfiguration() {
            required.extend([
                CtrlMilestone::ReconfigInitiated,
                CtrlMilestone::ConfigChosen,
                CtrlMilestone::ShardOperational,
            ]);
        }
        for milestone in required {
            assert!(
                sim_milestones.contains(&milestone),
                "{stack} sim: {milestone} missing ({sim_milestones:?})"
            );
            assert!(
                threaded_milestones.contains(&milestone),
                "{stack} threads: {milestone} missing ({threaded_milestones:?})"
            );
        }
        // Same decisions on both engines (the recorded orders differ — one
        // clock is virtual, the other is the wall): the stream observed,
        // never steered.
        let sim_history = sim.history();
        let threaded_history = threaded.history();
        for i in 1..=24u64 {
            let tx = TxId::new(i);
            assert_eq!(
                sim_history.decision(tx),
                threaded_history.decision(tx),
                "{stack} {tx}: decisions differ across engines"
            );
        }
    }
}

/// Contract 3 (property): across stacks and seeds, every closed blackout is
/// bracketed by control-plane events — it opens exactly at a degrading
/// milestone and closes at a decision on the same shard strictly after the
/// last degrading event, so the window nests inside its fault→heal span.
#[test]
fn blackout_windows_are_bracketed_by_ctrl_events() {
    for stack in STACKS {
        for seed in [1u64, 5, 13] {
            let cluster = run_faulty(stack, seed, ExecutionMode::Sim, true);
            let ctrl = cluster.ctrl_events();
            let decided = decided_times_per_shard(&cluster.obs_events());
            let first_degrade = ctrl
                .iter()
                .filter(|e| e.milestone.degrades())
                .map(|e| e.at_micros)
                .min();
            for blackout in cluster.blackouts() {
                // Opens at a degrading ctrl event whose milestone is the
                // recorded cause.
                assert!(
                    ctrl.iter().any(|e| e.at_micros == blackout.start_micros
                        && e.milestone == blackout.cause
                        && e.milestone.degrades()),
                    "{stack} seed={seed}: window start {} not anchored to a \
                     degrading ctrl event",
                    blackout.start_micros
                );
                assert!(
                    Some(blackout.start_micros) >= first_degrade,
                    "{stack} seed={seed}: window precedes the first fault"
                );
                assert!(
                    blackout.start_micros <= blackout.last_degrade_micros,
                    "{stack} seed={seed}: degrade extent precedes the window"
                );
                let Some(end) = blackout.end_micros else {
                    continue;
                };
                // Closes at a real decision on the same shard, strictly
                // after the last degrading event inside the window.
                assert!(
                    end > blackout.last_degrade_micros,
                    "{stack} seed={seed}: window closed before it stopped degrading"
                );
                assert!(
                    decided
                        .get(&blackout.shard)
                        .is_some_and(|times| times.contains(&end)),
                    "{stack} seed={seed}: window end {end} is not a decision \
                     on shard {}",
                    blackout.shard
                );
                assert!(
                    end <= cluster.now().as_micros(),
                    "{stack} seed={seed}: window closes in the future"
                );
            }
        }
    }
}
