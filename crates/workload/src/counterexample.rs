//! The Figure 4a counter-example, scripted (experiment E7).
//!
//! The schedule: a transaction `t` spanning shards `s1` and `s2` is prepared
//! to commit at both leaders. Its coordinator `p_c` persists the commit vote
//! at `s1`'s follower, then stalls. `s2` is reconfigured (its follower becomes
//! the new leader and a fresh replica joins); afterwards `s1`'s leader retries
//! `t`, the new leader of `s2` does not know it and the retry coordinator
//! externalises **abort**. Finally the stalled `p_c` wakes up, persists the
//! *old* commit vote of `s2` at the new leader by RDMA and externalises
//! **commit** — a safety violation.
//!
//! With the naive per-shard reconfiguration ([`ReconfigMode::NaivePerShard`])
//! the late RDMA write lands (followers cannot reject it) and the
//! contradiction is observable at the client. With the correct protocol
//! ([`ReconfigMode::GlobalCorrect`]) probing closes the RDMA connections, the
//! write is rejected, `p_c` never gathers its acknowledgements and only the
//! abort is externalised.

use ratc_rdma::{RdmaCluster, RdmaClusterConfig, RdmaMsg, ReconfigMode, ScriptedPeer};
use ratc_sim::SimDuration;
use ratc_types::{Decision, Key, Payload, ShardId, ShardMap, TxId, Value, Version};

/// Outcome of one run of the Figure 4a schedule.
#[derive(Debug, Clone)]
pub struct CounterexampleOutcome {
    /// The reconfiguration mode that was exercised.
    pub mode: ReconfigMode,
    /// Whether the stalled coordinator received an RDMA acknowledgement for
    /// its late write (and therefore externalised commit).
    pub stale_commit_externalized: bool,
    /// Contradictory-decision violations observed by the client.
    pub client_violations: usize,
    /// RDMA writes rejected because the connection had been closed.
    pub rdma_writes_rejected: u64,
    /// The decision the retry coordinator externalised.
    pub retry_decision: Option<Decision>,
}

impl std::fmt::Display for CounterexampleOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} stale_commit={:<5} violations={:<2} rdma_rejected={:<3} retry_decision={:?}",
            format!("{:?}", self.mode),
            self.stale_commit_externalized,
            self.client_violations,
            self.rdma_writes_rejected,
            self.retry_decision
        )
    }
}

/// Finds a key managed by `shard` under the cluster's hash sharding.
fn key_on_shard(cluster: &RdmaCluster, shard: ShardId) -> Key {
    for i in 0..10_000 {
        let key = Key::new(format!("cx-{i}"));
        if cluster.sharding().shard_of(&key) == shard {
            return key;
        }
    }
    unreachable!("hash sharding covers every shard within 10k probes")
}

/// Runs the Figure 4a schedule under the given reconfiguration mode.
pub fn run_counterexample(mode: ReconfigMode, seed: u64) -> CounterexampleOutcome {
    let mut cluster = RdmaCluster::new(
        RdmaClusterConfig::default()
            .with_shards(2)
            .with_mode(mode)
            .with_seed(seed),
    );
    let s1 = ShardId::new(0);
    let s2 = ShardId::new(1);
    let config = cluster.current_config();
    let p1 = config.leader_of(s1).expect("leader of s1");
    let p2 = config.followers_of(s1)[0];
    let p3 = config.leader_of(s2).expect("leader of s2");
    let p4 = config.followers_of(s2)[0];
    let client = cluster.client_id();

    // The stalled coordinator p_c, played by a scripted peer. In a real
    // deployment it would be a replica of a third shard with open RDMA
    // connections to every other replica.
    let pc = cluster.world.add_actor(ScriptedPeer::default());
    for target in [p1, p2, p3, p4] {
        cluster.world.rdma_open(target, pc);
    }

    // The transaction spans both shards.
    let tx = TxId::new(1);
    let key1 = key_on_shard(&cluster, s1);
    let key2 = key_on_shard(&cluster, s2);
    let payload = Payload::builder()
        .read(key1.clone(), Version::ZERO)
        .read(key2.clone(), Version::ZERO)
        .write(key1, Value::from("1"))
        .write(key2, Value::from("2"))
        .commit_version(Version::new(1))
        .build()
        .expect("well-formed");
    {
        let now = cluster.world.now();
        cluster
            .world
            .actor_mut::<ratc_rdma::harness::RdmaClientActor>(client)
            .expect("client")
            .record_certify(tx, payload.clone(), now);
    }

    // Step 1 (Figure 4a): p_c prepares t at both leaders.
    let shards = vec![s1, s2];
    for (leader, shard) in [(p1, s1), (p3, s2)] {
        let restricted = payload.restrict(shard, cluster.sharding());
        cluster.world.send_from(
            pc,
            leader,
            RdmaMsg::Prepare {
                tx,
                payload: Some(restricted),
                shards: shards.clone(),
                client,
            },
        );
    }
    cluster.run_for(SimDuration::from_millis(2));
    let acks: Vec<RdmaMsg> = cluster
        .world
        .actor::<ScriptedPeer>(pc)
        .expect("scripted peer")
        .received
        .iter()
        .map(|(_, m)| m.clone())
        .collect();
    let prepare_ack = |shard: ShardId| {
        acks.iter().find_map(|m| match m {
            RdmaMsg::PrepareAck {
                shard: s,
                pos,
                payload,
                vote,
                ..
            } if *s == shard => Some((*pos, payload.clone(), *vote)),
            // analyze:allow(wildcard-dispatch): extraction filter over a
            // scripted peer's inbox, not a dispatch — non-PREPARE_ACK
            // traffic is deliberately skipped while reconstructing Fig. 4a.
            _ => None,
        })
    };
    let (pos1, payload1, vote1) = prepare_ack(s1).expect("PREPARE_ACK from s1's leader");
    let (pos2, payload2, vote2) = prepare_ack(s2).expect("PREPARE_ACK from s2's leader");
    assert_eq!(vote1, Decision::Commit);
    assert_eq!(vote2, Decision::Commit);

    // Step 2: p_c persists s1's commit vote at p2 by RDMA.
    cluster.world.rdma_send_from(
        pc,
        p2,
        RdmaMsg::Accept {
            shard: s1,
            pos: pos1,
            tx,
            payload: payload1,
            vote: vote1,
            shards: shards.clone(),
            client,
        },
    );
    cluster.run_for(SimDuration::from_millis(2));

    // s2's leader is suspected; the shard (or, in the correct protocol, the
    // whole system) is reconfigured: p4 becomes the new leader and the spare
    // joins as its follower.
    cluster.crash(p3);
    cluster.start_reconfiguration(s2, p1, vec![p3]);
    cluster.run_to_quiescence();

    // Step 3–5: p1 retries t. The new leader of s2 does not know t, prepares
    // it as aborted, and the retry coordinator externalises abort.
    cluster.retry(p1, tx);
    cluster.run_to_quiescence();
    let retry_decision = cluster.history().decision(tx);

    // Steps 6–7: the stalled p_c finally persists the *old* commit vote of s2
    // at p4 (now s2's leader) and, if the write is acknowledged, externalises
    // commit.
    let acks_before = cluster
        .world
        .actor::<ScriptedPeer>(pc)
        .expect("scripted peer")
        .acks
        .len();
    cluster.world.rdma_send_from(
        pc,
        p4,
        RdmaMsg::Accept {
            shard: s2,
            pos: pos2,
            tx,
            payload: payload2,
            vote: vote2,
            shards,
            client,
        },
    );
    cluster.run_for(SimDuration::from_millis(2));
    let acks_after = cluster
        .world
        .actor::<ScriptedPeer>(pc)
        .expect("scripted peer")
        .acks
        .len();
    let stale_commit_externalized = acks_after > acks_before;
    if stale_commit_externalized {
        cluster.world.send_from(
            pc,
            client,
            RdmaMsg::DecisionClient {
                tx,
                decision: Decision::Commit,
            },
        );
    }
    cluster.run_to_quiescence();

    CounterexampleOutcome {
        mode,
        stale_commit_externalized,
        client_violations: cluster.client_violations().len(),
        rdma_writes_rejected: cluster.world.rdma_rejected(),
        retry_decision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_per_shard_reconfiguration_violates_safety() {
        let outcome = run_counterexample(ReconfigMode::NaivePerShard, 1);
        assert_eq!(outcome.retry_decision, Some(Decision::Abort));
        assert!(
            outcome.stale_commit_externalized,
            "the stale coordinator's write must land under the naive protocol"
        );
        assert!(
            outcome.client_violations > 0,
            "contradictory decisions must be observable at the client"
        );
    }

    #[test]
    fn correct_global_reconfiguration_excludes_the_violation() {
        let outcome = run_counterexample(ReconfigMode::GlobalCorrect, 1);
        assert_eq!(outcome.retry_decision, Some(Decision::Abort));
        assert!(
            !outcome.stale_commit_externalized,
            "the stale coordinator must not receive an acknowledgement"
        );
        assert_eq!(outcome.client_violations, 0);
        assert!(
            outcome.rdma_writes_rejected > 0,
            "the late write must be rejected"
        );
    }
}
