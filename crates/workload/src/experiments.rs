//! Experiment drivers: one function per experiment of EXPERIMENTS.md.
//!
//! Every experiment is **generic over the stack**: it takes a
//! [`StackKind`], deploys it through the unified [`ClusterSpec`] builder and
//! drives it through the [`TcsCluster`] facade, so E1–E8 run on the
//! message-passing protocol, the RDMA protocol and the 2PC-over-Paxos
//! baseline from one code path. The few real per-protocol differences
//! (the baseline's Paxos phase-1 warm-up in E1, reconfiguration vs failure
//! masking in E6) are explicit branches on capability probes or the stack
//! selector — not separate implementations.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use ratc_core::flow::FlowControlConfig;
use ratc_core::invariants;
use ratc_harness::{ClusterSpec, StackKind, TcsCluster};
use ratc_sim::{ExecutionMode, LatencyUnit, Phase, SimDuration};
use ratc_spec::check_history;
use ratc_types::{Key, Payload, Serializability, ShardId, ShardMap, TxId, Value, Version};

use crate::generator::{KeyDistribution, WorkloadSpec};

fn median(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    values[values.len() / 2]
}

fn build(stack: StackKind, shards: u32, seed: u64) -> Box<dyn TcsCluster> {
    ClusterSpec::new(stack)
        .with_shards(shards)
        .with_seed(seed)
        .build()
}

// ---------------------------------------------------------------------------
// E1: decision latency in message delays
// ---------------------------------------------------------------------------

/// Result of the latency experiment (E1).
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Number of shards in the deployment.
    pub shards: u32,
    /// Transactions measured.
    pub transactions: usize,
    /// Median client-visible decision latency in message delays.
    pub median_hops: f64,
    /// Median decision latency at the coordinator (the co-located-client
    /// number the paper quotes as 4); only meaningful for the RATC protocols.
    pub median_coordinator_hops: f64,
    /// Mean client-visible decision latency in simulated microseconds.
    ///
    /// E1 always runs on the deterministic Sim backend, where
    /// `DecisionLatency::micros` is virtual time; for real wall-clock
    /// latencies use the E9 drivers, which run under
    /// [`ExecutionMode::Threads`](ratc_sim::ExecutionMode).
    pub mean_micros: f64,
}

impl fmt::Display for LatencyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} shards={:<2} txns={:<4} median_delays={:<4} colocated={:<4} mean_us={:.0}",
            self.stack.to_string(),
            self.shards,
            self.transactions,
            self.median_hops,
            self.median_coordinator_hops,
            self.mean_micros
        )
    }
}

/// E1: measures client-visible decision latency in message delays for the
/// given stack on a disjoint (conflict-free) workload.
pub fn latency_experiment(
    stack: StackKind,
    shards: u32,
    tx_count: usize,
    seed: u64,
) -> LatencyResult {
    let payload = |i: usize| {
        Payload::builder()
            .read(Key::new(format!("k{i}")), Version::ZERO)
            .write(Key::new(format!("k{i}")), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed")
    };
    let mut cluster = build(stack, shards, seed);
    if stack == StackKind::Baseline {
        // Warm-up: one transaction per shard pays that shard's Paxos phase 1
        // (and the transaction manager's) exactly once, so the measured
        // transactions see the steady-state 7-delay critical path.
        let mut warmups = 0u64;
        for shard_idx in 0..shards {
            let shard = ShardId::new(shard_idx);
            let key = (0..100_000)
                .map(|i| Key::new(format!("warm-{i}")))
                .find(|k| cluster.sharding().shard_of(k) == shard)
                .expect("hash sharding covers every shard");
            warmups += 1;
            let warm_payload = Payload::builder()
                .read(key.clone(), Version::ZERO)
                .write(key, Value::from("w"))
                .commit_version(Version::new(1))
                .build()
                .expect("well-formed");
            cluster.submit(TxId::new(u64::MAX - warmups), warm_payload);
            cluster.run_to_quiescence();
        }
    }
    for i in 0..tx_count {
        cluster.submit(TxId::new(i as u64 + 1), payload(i));
    }
    cluster.run_to_quiescence();
    let latencies = cluster.latencies();
    let measured: Vec<_> = latencies
        .iter()
        .filter(|(tx, _)| tx.as_u64() <= tx_count as u64)
        .collect();
    let hops: Vec<f64> = measured.iter().map(|(_, l)| f64::from(l.hops)).collect();
    let micros: Vec<f64> = measured.iter().map(|(_, l)| l.micros as f64).collect();
    LatencyResult {
        stack,
        shards,
        transactions: measured.len(),
        median_hops: median(hops),
        median_coordinator_hops: cluster
            .sample_mean("coordinator_decision_hops")
            .unwrap_or(0.0),
        mean_micros: micros.iter().sum::<f64>() / micros.len().max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// E2: leader load
// ---------------------------------------------------------------------------

/// Result of the leader-load experiment (E2).
#[derive(Debug, Clone)]
pub struct LeaderLoadResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Committed transactions.
    pub committed: usize,
    /// Mean messages handled (sent + received) per shard leader per decided
    /// transaction.
    pub leader_msgs_per_txn: f64,
    /// Mean messages handled per non-leader replica per decided transaction.
    pub follower_msgs_per_txn: f64,
}

impl fmt::Display for LeaderLoadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} committed={:<5} leader_msgs/txn={:<6.2} follower_msgs/txn={:<6.2}",
            self.stack.to_string(),
            self.committed,
            self.leader_msgs_per_txn,
            self.follower_msgs_per_txn
        )
    }
}

/// E2: messages handled by shard leaders vs followers per transaction.
pub fn leader_load_experiment(
    stack: StackKind,
    shards: u32,
    tx_count: usize,
    seed: u64,
) -> LeaderLoadResult {
    let spec = WorkloadSpec {
        key_count: 10_000,
        keys_per_tx: 2,
        write_fraction: 0.5,
        tx_count,
        distribution: KeyDistribution::Uniform,
    };
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let txs = spec.generate(&mut rng);
    let mut cluster = build(stack, shards, seed);
    for (tx, payload) in txs {
        cluster.submit(tx, payload);
    }
    cluster.run_to_quiescence();
    let decided = cluster.history().decide_count().max(1);
    let mut leader_total = 0.0;
    let mut leader_count = 0usize;
    let mut follower_total = 0.0;
    let mut follower_count = 0usize;
    for shard in cluster.shards() {
        let leader = cluster.leader_of(shard);
        for pid in cluster.members_of(shard) {
            let handled = cluster.process_handled(pid) as f64;
            if Some(pid) == leader {
                leader_total += handled;
                leader_count += 1;
            } else {
                follower_total += handled;
                follower_count += 1;
            }
        }
    }
    LeaderLoadResult {
        stack,
        committed: cluster.history().committed().count(),
        leader_msgs_per_txn: leader_total / leader_count.max(1) as f64 / decided as f64,
        follower_msgs_per_txn: follower_total / follower_count.max(1) as f64 / decided as f64,
    }
}

// ---------------------------------------------------------------------------
// E3: replication cost
// ---------------------------------------------------------------------------

/// Result of the replication-cost experiment (E3).
#[derive(Debug, Clone)]
pub struct ReplicationCostResult {
    /// Failures tolerated per shard.
    pub f: usize,
    /// Replicas per shard in RATC (`f + 1`).
    pub ratc_replicas: usize,
    /// Replicas per shard in the baseline (`2f + 1`).
    pub baseline_replicas: usize,
    /// Total processes in a 4-shard RATC deployment (excluding CS and client).
    pub ratc_total_processes: usize,
    /// Total processes in a 4-shard baseline deployment (including the TM
    /// group).
    pub baseline_total_processes: usize,
}

impl fmt::Display for ReplicationCostResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f={:<2} ratc_replicas/shard={:<3} baseline_replicas/shard={:<3} ratc_total={:<4} baseline_total={:<4}",
            self.f,
            self.ratc_replicas,
            self.baseline_replicas,
            self.ratc_total_processes,
            self.baseline_total_processes
        )
    }
}

/// E3: replicas needed per shard (and for a fixed 4-shard deployment) as a
/// function of the number of tolerated failures, straight off the
/// [`ClusterSpec`] replica arithmetic.
pub fn replication_cost_experiment(f: usize) -> ReplicationCostResult {
    const SHARDS: usize = 4;
    let ratc = ClusterSpec::new(StackKind::Core).with_failures(f);
    let baseline = ClusterSpec::new(StackKind::Baseline).with_failures(f);
    let ratc_replicas = ratc.replicas_per_shard();
    let baseline_replicas = baseline.replicas_per_shard();
    ReplicationCostResult {
        f,
        ratc_replicas,
        baseline_replicas,
        ratc_total_processes: SHARDS * ratc_replicas,
        baseline_total_processes: SHARDS * baseline_replicas + baseline_replicas,
    }
}

// ---------------------------------------------------------------------------
// E4: scaling with shards per transaction and offered load
// ---------------------------------------------------------------------------

/// Result of the scaling experiment (E4).
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Number of shards in the deployment.
    pub shards: u32,
    /// Keys (and therefore roughly shards) touched per transaction.
    pub keys_per_tx: usize,
    /// Committed transactions.
    pub committed: usize,
    /// Total simulated time, in milliseconds.
    pub sim_millis: f64,
    /// Committed transactions per simulated millisecond.
    pub throughput_per_ms: f64,
    /// Mean client-visible latency in simulated microseconds.
    ///
    /// E4 always runs on the deterministic Sim backend; its throughput is
    /// virtual-time, not wall-clock (that is E9's
    /// [`wallclock_scaling_experiment`]).
    pub mean_latency_micros: f64,
}

impl fmt::Display for ScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} shards={:<3} keys/txn={:<2} committed={:<5} sim_ms={:<8.2} throughput/ms={:<7.2} mean_us={:.0}",
            self.stack.to_string(),
            self.shards,
            self.keys_per_tx,
            self.committed,
            self.sim_millis,
            self.throughput_per_ms,
            self.mean_latency_micros
        )
    }
}

/// E4: throughput and latency of the given stack as the number of shards
/// touched per transaction grows.
pub fn scaling_experiment(
    stack: StackKind,
    shards: u32,
    keys_per_tx: usize,
    tx_count: usize,
    seed: u64,
) -> ScalingResult {
    let spec = WorkloadSpec {
        key_count: 50_000,
        keys_per_tx,
        write_fraction: 0.5,
        tx_count,
        distribution: KeyDistribution::Uniform,
    };
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let txs = spec.generate(&mut rng);
    let mut cluster = build(stack, shards, seed);
    for (tx, payload) in txs {
        cluster.submit(tx, payload);
    }
    cluster.run_to_quiescence();
    let committed = cluster.history().committed().count();
    let sim_millis = cluster.now().as_millis_f64().max(0.001);
    let latencies = cluster.latencies();
    let mean_latency_micros =
        latencies.values().map(|l| l.micros as f64).sum::<f64>() / latencies.len().max(1) as f64;
    ScalingResult {
        stack,
        shards,
        keys_per_tx,
        committed,
        sim_millis,
        throughput_per_ms: committed as f64 / sim_millis,
        mean_latency_micros,
    }
}

// ---------------------------------------------------------------------------
// E7: bounded-memory long histories via checkpointed truncation
// ---------------------------------------------------------------------------

/// Result of the log-truncation experiment (E7).
#[derive(Debug, Clone)]
pub struct TruncationResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Transactions submitted.
    pub tx_count: usize,
    /// Transactions decided.
    pub decided: usize,
    /// Whether checkpointed truncation was enabled (the baseline prunes
    /// decided payloads unconditionally instead).
    pub truncation_enabled: bool,
    /// Maximum retained (physical) log slots over all shard members at the
    /// end of the run.
    pub max_retained_slots: usize,
    /// Maximum logical log length over all shard members — what the retained
    /// count would be without truncation/pruning.
    pub max_log_next: u64,
    /// Total slots folded into checkpoints across the cluster (RATC stacks).
    pub slots_truncated: u64,
}

impl fmt::Display for TruncationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} truncation={:<5} txs={:<6} decided={:<6} retained_slots={:<6} logical_len={:<6} folded={}",
            self.stack.to_string(),
            self.truncation_enabled,
            self.tx_count,
            self.decided,
            self.max_retained_slots,
            self.max_log_next,
            self.slots_truncated
        )
    }
}

/// E7: drives a long paced history through the given stack and reports how
/// much certification-log memory the shard members actually retain. With
/// truncation enabled the retained slot count is bounded by the undecided
/// window plus the fold batch, regardless of `tx_count`; disabled, it equals
/// the whole history — which is what made 100k+-transaction E2/E4 runs
/// memory-bound before checkpointing. The baseline reports its unconditional
/// decided-payload pruning through the same probe.
pub fn truncation_experiment(
    stack: StackKind,
    shards: u32,
    tx_count: usize,
    truncation: Option<u64>,
    seed: u64,
) -> TruncationResult {
    use ratc_core::replica::TruncationConfig;
    let spec = WorkloadSpec {
        key_count: 10_000,
        keys_per_tx: 2,
        write_fraction: 0.5,
        tx_count,
        distribution: KeyDistribution::Uniform,
    };
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let txs = spec.generate(&mut rng);
    let mut cluster = ClusterSpec::new(stack)
        .with_shards(shards)
        .with_seed(seed)
        .with_truncation(match truncation {
            Some(batch) => TruncationConfig::with_batch(batch),
            None => TruncationConfig::disabled(),
        })
        .build();
    // Pace submissions in small waves so decisions (and the gossiped decided
    // frontiers) interleave with new transactions, as in a live system.
    for wave in txs.chunks(8) {
        for (tx, payload) in wave {
            cluster.submit(*tx, payload.clone());
        }
        cluster.run_to_quiescence();
    }
    let mut max_retained_slots = 0usize;
    let mut max_log_next = 0u64;
    for shard in cluster.shards() {
        for pid in cluster.members_of(shard) {
            if let Some(retained) = cluster.retained_log_slots(pid) {
                max_retained_slots = max_retained_slots.max(retained);
            }
            if let Some(next) = cluster.logical_log_len(pid) {
                max_log_next = max_log_next.max(next);
            }
        }
    }
    TruncationResult {
        stack,
        tx_count,
        decided: cluster.history().decide_count(),
        truncation_enabled: truncation.is_some(),
        max_retained_slots,
        max_log_next,
        slots_truncated: cluster.counter("log_slots_truncated"),
    }
}

// ---------------------------------------------------------------------------
// E5: abort rate vs contention
// ---------------------------------------------------------------------------

/// Result of the abort-rate experiment (E5).
#[derive(Debug, Clone)]
pub struct AbortRateResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Key distribution used.
    pub distribution: KeyDistribution,
    /// Committed transactions.
    pub committed: usize,
    /// Aborted transactions.
    pub aborted: usize,
    /// Abort rate (aborted / decided).
    pub abort_rate: f64,
}

impl fmt::Display for AbortRateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<24} committed={:<5} aborted={:<5} abort_rate={:.3}",
            self.stack.to_string(),
            format!("{:?}", self.distribution),
            self.committed,
            self.aborted,
            self.abort_rate
        )
    }
}

/// E5: abort rate under contention for the given stack.
pub fn abort_rate_experiment(
    stack: StackKind,
    distribution: KeyDistribution,
    tx_count: usize,
    seed: u64,
) -> AbortRateResult {
    let spec = WorkloadSpec {
        key_count: 200,
        keys_per_tx: 2,
        write_fraction: 1.0,
        tx_count,
        distribution,
    };
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let txs = spec.generate(&mut rng);
    let mut cluster = build(stack, 4, seed);
    for (tx, payload) in txs {
        cluster.submit(tx, payload);
    }
    cluster.run_to_quiescence();
    let history = cluster.history();
    let (committed, aborted) = (history.committed().count(), history.aborted().count());
    let decided = (committed + aborted).max(1);
    AbortRateResult {
        stack,
        distribution,
        committed,
        aborted,
        abort_rate: aborted as f64 / decided as f64,
    }
}

// ---------------------------------------------------------------------------
// E6: reconfiguration / availability
// ---------------------------------------------------------------------------

/// Result of the reconfiguration experiment (E6).
#[derive(Debug, Clone)]
pub struct ReconfigurationResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Whether a replica failure required a reconfiguration (RATC) or was
    /// masked by the quorum (baseline).
    pub reconfiguration_required: bool,
    /// Transactions committed after the crash point.
    pub committed_after_crash: usize,
    /// Simulated microseconds between the crash and the first commit decided
    /// after it on the affected shard.
    pub recovery_micros: u64,
}

impl fmt::Display for ReconfigurationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} reconfig_required={:<5} committed_after_crash={:<4} recovery_us={}",
            self.stack.to_string(),
            self.reconfiguration_required,
            self.committed_after_crash,
            self.recovery_micros
        )
    }
}

/// E6: availability after a single replica crash. The RATC stacks (`f + 1`)
/// must reconfigure before the affected shard certifies again; the baseline
/// (`2f + 1`) masks the failure — the capability probe
/// [`TcsCluster::supports_reconfiguration`] decides which recovery the
/// driver exercises.
pub fn reconfiguration_experiment(stack: StackKind, seed: u64) -> ReconfigurationResult {
    // A payload pinned to one specific key so every transaction involves the
    // crashed replica's shard.
    let payload = |i: u64| {
        Payload::builder()
            .read(Key::new(format!("pinned-{i}")), Version::ZERO)
            .write(Key::new(format!("pinned-{i}")), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed")
    };
    let mut cluster = build(stack, 1, seed);
    let shard = ShardId::new(0);
    let reconfigures = cluster.supports_reconfiguration();
    // Commit a few transactions, then crash a non-leader replica.
    for i in 0..5u64 {
        cluster.submit(TxId::new(i + 1), payload(i));
    }
    cluster.run_to_quiescence();
    let leader = cluster.leader_of(shard).expect("leader");
    let follower = cluster
        .members_of(shard)
        .into_iter()
        .find(|p| *p != leader)
        .expect("follower");
    cluster.crash(follower);
    // Submit transactions during the outage.
    for i in 5..15u64 {
        cluster.submit(TxId::new(i + 1), payload(i));
        cluster.run_for(SimDuration::from_millis(1));
    }
    if reconfigures {
        // Failure detection + reconfiguration; the baseline needs neither.
        cluster.start_reconfiguration(shard, leader, vec![follower]);
    }
    cluster.run_to_quiescence();
    // Submit more after recovery.
    for i in 15..20u64 {
        cluster.submit(TxId::new(i + 1), payload(i));
    }
    cluster.run_to_quiescence();
    let latencies = cluster.latencies();
    let committed_after = latencies
        .iter()
        .filter(|(tx, l)| tx.as_u64() > 5 && l.decision.is_commit())
        .count();
    // Recovery time: the earliest decision among transactions submitted
    // after the crash, measured from the crash (1 ms submission pacing).
    let recovery_micros = latencies
        .iter()
        .filter(|(tx, _)| tx.as_u64() > 5)
        .map(|(tx, l)| (tx.as_u64() - 6) * 1_000 + l.micros)
        .min()
        .unwrap_or(0);
    ReconfigurationResult {
        stack,
        reconfiguration_required: reconfigures,
        committed_after_crash: committed_after,
        recovery_micros,
    }
}

// ---------------------------------------------------------------------------
// E8: batched certification pipeline
// ---------------------------------------------------------------------------

/// Result of the batching experiment (E8) for one batch size.
#[derive(Debug, Clone)]
pub struct BatchingResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Batch size measured (1 = batching disabled, the paper's exchange).
    pub batch_size: usize,
    /// Transactions submitted.
    pub tx_count: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Messages handled (sent + received) by the measured shard leader per
    /// decided transaction — the E2 metric the batching pipeline amortises.
    pub leader_msgs_per_txn: f64,
    /// Committed transactions per simulation event step — a proxy for how
    /// much total cluster work one commit costs.
    pub commits_per_step: f64,
    /// `PREPARE_BATCH` messages actually sent (RATC stacks; the baseline
    /// batches inside its Paxos log appends instead).
    pub prepare_batches: u64,
}

impl fmt::Display for BatchingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} batch={:<3} txns={:<5} committed={:<5} leader_msgs/txn={:<7.3} commits/step={:<7.4} batches={}",
            self.stack.to_string(),
            self.batch_size,
            self.tx_count,
            self.committed,
            self.leader_msgs_per_txn,
            self.commits_per_step,
            self.prepare_batches
        )
    }
}

/// E8: leader message load and per-commit work of the given stack as the
/// batch size grows.
///
/// The deployment pins every transaction to shard 0 and, on the RATC stacks,
/// coordinates through a shard-1 member, so the measured shard-0 leader
/// handles only leader-role traffic: without batching that is one `PREPARE`
/// in, one `PREPARE_ACK` out and one `DECISION` in per transaction; with
/// batch size `B` the same three messages serve `B` transactions. The
/// baseline submits through its transaction manager (the only coordinator it
/// has) and amortises by packing a vote batch into one Multi-Paxos slot.
pub fn batching_experiment(
    stack: StackKind,
    tx_count: usize,
    batch_size: usize,
    seed: u64,
) -> BatchingResult {
    use ratc_core::batch::BatchingConfig;
    batching_experiment_with(
        stack,
        tx_count,
        BatchingConfig::with_batch(batch_size),
        seed,
    )
}

/// E8 with an explicit batching configuration — the adaptive variant of
/// [`batching_experiment`] (same deployment, measurement and metrics).
pub fn batching_experiment_with(
    stack: StackKind,
    tx_count: usize,
    batching: ratc_core::batch::BatchingConfig,
    seed: u64,
) -> BatchingResult {
    let batch_size = batching.max_batch;
    let mut cluster = ClusterSpec::new(stack)
        .with_shards(2)
        .with_seed(seed)
        .with_batching(batching)
        .build();
    let measured_shard = ShardId::new(0);
    // Coordinate from a shard-1 *follower*: not a member of the measured
    // shard, and not shard 1's leader either. Stacks with a dedicated
    // coordinator group (the baseline TM) coordinate there instead.
    let coordinator = if cluster.replicas_coordinate() {
        cluster.roster_of(ShardId::new(1))[1]
    } else {
        cluster.coordinator_pool()[0]
    };
    let keys: Vec<Key> = (0..)
        .map(|i: u64| Key::new(format!("k{i}")))
        .filter(|k| cluster.sharding().shard_of(k) == measured_shard)
        .take(tx_count)
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let payload = Payload::builder()
            .read(key.clone(), Version::ZERO)
            .write(key.clone(), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed");
        cluster.submit_via(TxId::new(i as u64 + 1), payload, coordinator);
    }
    cluster.run_to_quiescence();
    let decided = cluster.history().decide_count().max(1);
    let leader = cluster.leader_of(measured_shard).expect("leader");
    let handled = cluster.process_handled(leader) as f64;
    let committed = cluster.history().committed().count();
    BatchingResult {
        stack,
        batch_size: batch_size.max(1),
        tx_count,
        committed,
        leader_msgs_per_txn: handled / decided as f64,
        commits_per_step: committed as f64 / cluster.steps().max(1) as f64,
        prepare_batches: cluster.counter("prepare_batches_sent"),
    }
}

// ---------------------------------------------------------------------------
// E9: wall-clock throughput on the threaded backend
// ---------------------------------------------------------------------------

/// Result of one wall-clock throughput run (E9) on the threaded execution
/// backend ([`ExecutionMode::Threads`](ratc_sim::ExecutionMode)). Unlike every other experiment in
/// this module, these numbers come from real OS threads on a real clock:
/// they vary run to run and with the host, and the seed only fixes the
/// deployment layout, not the schedule.
#[derive(Debug, Clone)]
pub struct WallclockResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Number of shards in the deployment.
    pub shards: u32,
    /// Batch size of the certification pipeline (1 = batching disabled).
    pub batch: usize,
    /// Whether the run was closed-loop (waves of bounded outstanding
    /// transactions per shard) or open-loop (everything submitted up front).
    pub closed_loop: bool,
    /// Transactions submitted.
    pub transactions: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted (0 on these conflict-free workloads unless the
    /// protocol aborts for non-certification reasons).
    pub aborted: usize,
    /// Transactions still undecided when the run was cut off — nonzero only
    /// when an open-loop run hits the threaded backend's hard quiescence
    /// timeout before draining, in which case `committed_per_sec` measures
    /// the truncated window, honestly including the collapse.
    pub undecided: usize,
    /// Wall-clock seconds of the measured window.
    pub wall_secs: f64,
    /// Committed transactions per wall-clock second.
    pub committed_per_sec: f64,
    /// Mean client-visible decision latency in wall-clock microseconds.
    pub mean_latency_micros: f64,
    /// Estimated 99th-percentile client-visible decision latency, from the
    /// streaming histogram (relative error ≤ ~9%).
    pub p99_latency_micros: f64,
    /// Unit of every latency in this result: wall-clock microseconds — E9
    /// always runs on the threaded backend.
    pub latency_unit: LatencyUnit,
}

impl fmt::Display for WallclockResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} shards={:<2} batch={:<3} {:<6} txns={:<6} committed={:<6} aborted={:<5} undecided={:<5} wall_s={:<7.3} tx/s={:<9.0} mean_us={:<7.0} p99_us={:.0} ({})",
            self.stack.to_string(),
            self.shards,
            self.batch,
            if self.closed_loop { "closed" } else { "open" },
            self.transactions,
            self.committed,
            self.aborted,
            self.undecided,
            self.wall_secs,
            self.committed_per_sec,
            self.mean_latency_micros,
            self.p99_latency_micros,
            self.latency_unit
        )
    }
}

/// Deploys `stack` on the threaded backend with the given batching knob.
fn wallclock_cluster(
    stack: StackKind,
    shards: u32,
    batch: usize,
    seed: u64,
) -> Box<dyn TcsCluster> {
    use ratc_core::batch::BatchingConfig;
    let mut spec = ClusterSpec::new(stack)
        .with_shards(shards)
        .with_seed(seed)
        .with_execution(ratc_sim::ExecutionMode::Threads);
    if batch > 1 {
        spec = spec.with_batching(BatchingConfig::with_batch(batch));
    }
    spec.build()
}

/// A single-key read–write transaction on its own key: conflict-free, so
/// every submission must commit and throughput is not abort-limited.
fn disjoint_payload(i: u64) -> Payload {
    Payload::builder()
        .read(Key::new(format!("k{i}")), Version::ZERO)
        .write(Key::new(format!("k{i}")), Value::from("v"))
        .commit_version(Version::new(1))
        .build()
        .expect("well-formed")
}

/// E9 (open loop): submits `tx_count` disjoint transactions up front on the
/// threaded backend and measures committed transactions per wall-clock
/// second over the decision window — run start to the last decision, which
/// excludes the trailing quiescence drain. This is the *capacity* number:
/// with work always queued the host's cores are saturated, so on a
/// single-core host it is CPU-bound and roughly flat in the shard count,
/// while on a multi-core host it parallelises across shards.
pub fn wallclock_experiment(
    stack: StackKind,
    shards: u32,
    batch: usize,
    tx_count: usize,
    seed: u64,
) -> WallclockResult {
    let mut cluster = wallclock_cluster(stack, shards, batch, seed);
    for i in 0..tx_count {
        cluster.submit(TxId::new(i as u64 + 1), disjoint_payload(i as u64 + 1));
    }
    cluster.run_to_quiescence();
    let latencies = cluster.latencies();
    let history = cluster.history();
    let committed = history.committed().count();
    let aborted = history.aborted().count();
    // Every transaction was submitted at run start, so the largest
    // client-visible latency is exactly the window from run start to the
    // last decision arriving at the client.
    let window_micros = latencies
        .values()
        .map(|l| l.micros)
        .max()
        .unwrap_or(0)
        .max(1);
    let wall_secs = window_micros as f64 / 1e6;
    let mean_latency_micros =
        latencies.values().map(|l| l.micros as f64).sum::<f64>() / latencies.len().max(1) as f64;
    WallclockResult {
        stack,
        shards,
        batch: batch.max(1),
        closed_loop: false,
        transactions: tx_count,
        committed,
        aborted,
        undecided: tx_count.saturating_sub(committed + aborted),
        wall_secs,
        committed_per_sec: committed as f64 / wall_secs,
        mean_latency_micros,
        p99_latency_micros: cluster
            .sample_percentile("client_decision_micros", 99.0)
            .unwrap_or(0.0),
        latency_unit: cluster.latency_unit(),
    }
}

/// E9 (closed loop): `outstanding` logical clients per shard each keep one
/// transaction in flight — the driver submits `outstanding × shards`
/// disjoint transactions, waits for all of them to decide
/// (`run_to_quiescence`), and repeats for `waves` rounds.
///
/// In this regime per-shard throughput is bound by *round latency* —
/// message hand-offs plus the batcher's flush delay (`outstanding` is kept
/// below the batch size, so every round waits out the partial-batch flush
/// timer) — not by CPU. Shards wait out their flush timers concurrently
/// (sleeping needs no core), so aggregate committed-tx/s scales with the
/// shard count even on a single-core host. This is the number behind the
/// "aggregate throughput scales with shards" acceptance criterion; it is
/// how a group-commit system scales when latency-bound rather than
/// saturated.
pub fn wallclock_scaling_experiment(
    stack: StackKind,
    shards: u32,
    outstanding: usize,
    waves: usize,
    batch: usize,
    seed: u64,
) -> WallclockResult {
    let mut cluster = wallclock_cluster(stack, shards, batch, seed);
    let per_wave = outstanding * shards as usize;
    // analyze:allow(wall-clock): E9 measures real elapsed time by design —
    // wall-clock throughput of the threaded backend is the experiment's
    // entire point; the result is reported, never fed back into the run.
    let start = std::time::Instant::now();
    let mut next = 0u64;
    for _ in 0..waves {
        for _ in 0..per_wave {
            next += 1;
            cluster.submit(TxId::new(next), disjoint_payload(next));
        }
        cluster.run_to_quiescence();
    }
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    let latencies = cluster.latencies();
    let history = cluster.history();
    let committed = history.committed().count();
    let aborted = history.aborted().count();
    let transactions = per_wave * waves;
    let mean_latency_micros =
        latencies.values().map(|l| l.micros as f64).sum::<f64>() / latencies.len().max(1) as f64;
    WallclockResult {
        stack,
        shards,
        batch: batch.max(1),
        closed_loop: true,
        transactions,
        committed,
        aborted,
        undecided: transactions.saturating_sub(committed + aborted),
        wall_secs,
        committed_per_sec: committed as f64 / wall_secs,
        mean_latency_micros,
        p99_latency_micros: cluster
            .sample_percentile("client_decision_micros", 99.0)
            .unwrap_or(0.0),
        latency_unit: cluster.latency_unit(),
    }
}

// ---------------------------------------------------------------------------
// E10 (overload): open-loop goodput under increasing offered load
// ---------------------------------------------------------------------------

/// Result of one point of the open-loop overload sweep (E10).
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Number of shards in the deployment.
    pub shards: u32,
    /// Whether flow control (admission window + retry backoff) was active.
    pub flow_enabled: bool,
    /// Open-loop depth: transactions submitted up front.
    pub depth: usize,
    /// Transactions committed before the run was cut off.
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Transactions still undecided at cut-off — the collapse signature.
    pub undecided: usize,
    /// Wall-clock seconds from run start to the last decision.
    pub wall_secs: f64,
    /// Committed transactions per wall-clock second (goodput).
    pub goodput_per_sec: f64,
    /// Estimated 99th-percentile client-visible decision latency, from the
    /// streaming histogram (relative error ≤ ~9%).
    pub p99_latency_micros: f64,
    /// Messages delivered per decided transaction, per message type
    /// (`(label, msgs/tx)`, sorted by label) — the protocol's per-message
    /// cost under this offered load. Empty when nothing decided.
    pub msgs_per_tx: Vec<(String, f64)>,
    /// Unit of every latency in this result: wall-clock microseconds — E10
    /// always runs on the threaded backend.
    pub latency_unit: LatencyUnit,
}

impl fmt::Display for OverloadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} shards={:<2} flow={:<5} depth={:<6} committed={:<6} undecided={:<5} wall_s={:<7.3} goodput/s={:<8.0} p99_us={:.0} ({})",
            self.stack.to_string(),
            self.shards,
            self.flow_enabled,
            self.depth,
            self.committed,
            self.undecided,
            self.wall_secs,
            self.goodput_per_sec,
            self.p99_latency_micros,
            self.latency_unit
        )
    }
}

/// E10: one point of the overload sweep — `depth` disjoint transactions
/// submitted up front (open loop) on the threaded backend with batching
/// disabled, the configuration whose retry storm previously collapsed the
/// baseline. Goodput is committed transactions over the decision window.
///
/// `flow` selects the cluster-wide flow-control knobs:
/// [`FlowControlConfig::default`] (admission window + exponential backoff)
/// or [`FlowControlConfig::legacy`] (the pre-flow immediate-retry
/// behaviour, kept measurable for the before/after comparison).
pub fn overload_experiment(
    stack: StackKind,
    shards: u32,
    flow: FlowControlConfig,
    depth: usize,
    seed: u64,
) -> OverloadResult {
    let mut cluster = ClusterSpec::new(stack)
        .with_shards(shards)
        .with_seed(seed)
        .with_flow_control(flow)
        .with_execution(ratc_sim::ExecutionMode::Threads)
        // Observability feeds the per-message-type counters reported in the
        // JSON rows; recording never perturbs the protocol's behaviour.
        .with_observability()
        .build();
    for i in 0..depth {
        cluster.submit(TxId::new(i as u64 + 1), disjoint_payload(i as u64 + 1));
    }
    cluster.run_to_quiescence();
    let latencies = cluster.latencies();
    let history = cluster.history();
    let committed = history.committed().count();
    let aborted = history.aborted().count();
    let decided = committed + aborted;
    let msgs_per_tx = if decided == 0 {
        Vec::new()
    } else {
        cluster
            .msg_type_counters()
            .into_iter()
            .map(|(label, counters)| (label, counters.delivered as f64 / decided as f64))
            .collect()
    };
    let window_micros = latencies
        .values()
        .map(|l| l.micros)
        .max()
        .unwrap_or(0)
        .max(1);
    let wall_secs = window_micros as f64 / 1e6;
    OverloadResult {
        stack,
        shards,
        flow_enabled: flow.enabled,
        depth,
        committed,
        aborted,
        undecided: depth.saturating_sub(committed + aborted),
        wall_secs,
        goodput_per_sec: committed as f64 / wall_secs,
        p99_latency_micros: cluster
            .sample_percentile("client_decision_micros", 99.0)
            .unwrap_or(0.0),
        msgs_per_tx,
        latency_unit: cluster.latency_unit(),
    }
}

/// E10: the full sweep — one [`overload_experiment`] run per offered-load
/// depth, same stack and knobs throughout. The acceptance criterion reads
/// the resulting goodput curve: with flow control on, goodput past
/// saturation must plateau (stay within a fraction of the peak) instead of
/// collapsing toward zero.
pub fn overload_sweep(
    stack: StackKind,
    shards: u32,
    flow: FlowControlConfig,
    depths: &[usize],
    seed: u64,
) -> Vec<OverloadResult> {
    depths
        .iter()
        .map(|&depth| overload_experiment(stack, shards, flow, depth, seed))
        .collect()
}

// ---------------------------------------------------------------------------
// E11 (phases): commit-path phase-latency attribution
// ---------------------------------------------------------------------------

/// Result of one E11 phase-attribution run: where the commit path spends its
/// time, averaged over every transaction with a complete lifecycle timeline.
///
/// Invariant (asserted by the driver): for every measured transaction the six
/// phase latencies sum *exactly* to its end-to-end latency, so the mean
/// phases sum to `mean_total_micros` up to floating-point rounding.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Stack measured.
    pub stack: StackKind,
    /// Execution engine the cluster ran on.
    pub execution: ExecutionMode,
    /// Number of shards in the deployment.
    pub shards: u32,
    /// Open-loop depth: transactions submitted up front.
    pub depth: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions with a complete timeline (submission through
    /// client-learned decision) — the population averaged below.
    pub measured: usize,
    /// Mean latency of each commit-path phase, in [`Phase::ALL`] order
    /// (admission, dispatch, certification, quorum, decide, relay).
    pub mean_phase_micros: [f64; 6],
    /// Mean end-to-end latency (submission to client-learned decision).
    pub mean_total_micros: f64,
    /// Mean retry/backoff re-drives per measured transaction.
    pub mean_retries: f64,
    /// Unit of every latency in this result: virtual microseconds under
    /// [`ExecutionMode::Sim`], wall-clock microseconds under
    /// [`ExecutionMode::Threads`].
    pub latency_unit: LatencyUnit,
}

impl fmt::Display for PhaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<7} shards={:<2} depth={:<6} measured={:<6}",
            self.stack.to_string(),
            match self.execution {
                ExecutionMode::Sim => "sim",
                ExecutionMode::Threads => "threads",
            },
            self.shards,
            self.depth,
            self.measured,
        )?;
        for (phase, mean) in Phase::ALL.iter().zip(self.mean_phase_micros.iter()) {
            write!(f, " {phase}={mean:<7.1}")?;
        }
        write!(
            f,
            " total={:<8.1} retries={:<4.2} ({})",
            self.mean_total_micros, self.mean_retries, self.latency_unit
        )
    }
}

/// E11: one cell of the phase-attribution matrix — `depth` disjoint
/// transactions submitted up front with observability enabled, then every
/// complete transaction timeline folded into a per-phase latency breakdown
/// (see [`ratc_sim::PhaseBreakdown`] for the paper's message-delay mapping).
///
/// `depth` selects the regime: 1 ≈ idle (pure protocol path), around the
/// admission-window size ≈ saturated, far above it ≈ overload (admission
/// queueing and retries dominate).
pub fn phase_experiment(
    stack: StackKind,
    execution: ExecutionMode,
    shards: u32,
    depth: usize,
    seed: u64,
) -> PhaseResult {
    let mut cluster = ClusterSpec::new(stack)
        .with_shards(shards)
        .with_seed(seed)
        .with_execution(execution)
        .with_observability()
        .build();
    for i in 0..depth {
        cluster.submit(TxId::new(i as u64 + 1), disjoint_payload(i as u64 + 1));
    }
    cluster.run_to_quiescence();
    let committed = cluster.history().committed().count();
    let breakdowns = cluster.phase_breakdown();
    let mut sums = [0.0f64; 6];
    let mut total = 0.0f64;
    let mut retries = 0.0f64;
    for breakdown in breakdowns.values() {
        // The attribution invariant the whole experiment rests on.
        assert_eq!(
            breakdown.phases().iter().sum::<u64>(),
            breakdown.total_micros(),
            "phase latencies must sum exactly to the end-to-end latency"
        );
        for (sum, micros) in sums.iter_mut().zip(breakdown.phases().iter()) {
            *sum += *micros as f64;
        }
        total += breakdown.total_micros() as f64;
        retries += breakdown.retries() as f64;
    }
    let measured = breakdowns.len();
    let n = measured.max(1) as f64;
    PhaseResult {
        stack,
        execution,
        shards,
        depth,
        committed,
        measured,
        mean_phase_micros: sums.map(|s| s / n),
        mean_total_micros: total / n,
        mean_retries: retries / n,
        latency_unit: cluster.latency_unit(),
    }
}

// ---------------------------------------------------------------------------
// E8 (invariants): randomized invariant checking
// ---------------------------------------------------------------------------

/// Result of the randomized invariant-checking experiment (E8).
#[derive(Debug, Clone, Default)]
pub struct InvariantsResult {
    /// Number of randomized runs executed.
    pub runs: usize,
    /// Total committed transactions across runs.
    pub committed: usize,
    /// Total aborted transactions across runs.
    pub aborted: usize,
    /// Runs in which a crash + reconfiguration was injected.
    pub runs_with_reconfiguration: usize,
    /// Invariant violations found (must be 0).
    pub invariant_violations: usize,
    /// History-level specification violations found (must be 0).
    pub spec_violations: usize,
}

impl fmt::Display for InvariantsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "runs={:<4} committed={:<6} aborted={:<5} with_reconfig={:<4} invariant_violations={} spec_violations={}",
            self.runs,
            self.committed,
            self.aborted,
            self.runs_with_reconfiguration,
            self.invariant_violations,
            self.spec_violations
        )
    }
}

/// E8: runs `runs` randomized executions of the message-passing protocol with
/// random contention, random crashes and reconfigurations, checking the
/// white-box invariants and the black-box TCS specification on each. Stays
/// on the concrete core cluster ([`ClusterSpec::build_core`]) because the
/// Figure 3 invariant checkers inspect live replica state.
pub fn invariants_experiment(runs: usize, txs_per_run: usize, base_seed: u64) -> InvariantsResult {
    let mut result = InvariantsResult::default();
    for run in 0..runs {
        let seed = base_seed + run as u64;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let spec = WorkloadSpec {
            key_count: 50,
            keys_per_tx: 2,
            write_fraction: 1.0,
            tx_count: txs_per_run,
            distribution: KeyDistribution::Uniform,
        };
        let txs = spec.generate(&mut rng);
        let mut cluster = ClusterSpec::new(StackKind::Core)
            .with_shards(2)
            .with_seed(seed)
            .build_core();
        let crash_at = rng.gen_range(0..txs.len().max(1));
        let inject_crash = rng.gen_bool(0.6);
        for (i, (tx, payload)) in txs.into_iter().enumerate() {
            cluster.submit(tx, payload);
            if inject_crash && i == crash_at {
                cluster.run_for(SimDuration::from_millis(1));
                let shard = ShardId::new(rng.gen_range(0..2));
                let leader = cluster.current_leader(shard);
                let follower = cluster
                    .initial_members(shard)
                    .iter()
                    .copied()
                    .find(|p| *p != leader);
                if let Some(follower) = follower {
                    cluster.crash(follower);
                    cluster.start_reconfiguration(shard, leader, vec![follower]);
                    result.runs_with_reconfiguration += 1;
                }
            }
        }
        cluster.run_to_quiescence();
        let history = cluster.history();
        result.runs += 1;
        result.committed += history.committed().count();
        result.aborted += history.aborted().count();
        result.invariant_violations += invariants::check_cluster(&cluster).len();
        result.spec_violations += check_history(&history, &Serializability::new()).len()
            + cluster.client_violations().len();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_latency_shapes_match_the_paper() {
        let mp = latency_experiment(StackKind::Core, 2, 20, 1);
        let baseline = latency_experiment(StackKind::Baseline, 2, 20, 1);
        assert_eq!(mp.median_hops, 5.0, "RATC-MP decision latency");
        assert_eq!(baseline.median_hops, 7.0, "baseline decision latency");
        assert!(mp.median_coordinator_hops <= 4.5, "co-located latency ~4");
        let rdma = latency_experiment(StackKind::Rdma, 2, 20, 1);
        assert!(
            rdma.median_hops <= mp.median_hops,
            "RDMA must not be slower than message passing ({} vs {})",
            rdma.median_hops,
            mp.median_hops
        );
    }

    #[test]
    fn e2_leader_load_is_lower_for_ratc() {
        let ratc = leader_load_experiment(StackKind::Core, 2, 100, 2);
        let baseline = leader_load_experiment(StackKind::Baseline, 2, 100, 2);
        assert!(
            ratc.leader_msgs_per_txn < baseline.leader_msgs_per_txn,
            "RATC leaders must handle fewer messages per transaction ({} vs {})",
            ratc.leader_msgs_per_txn,
            baseline.leader_msgs_per_txn
        );
    }

    #[test]
    fn e3_replication_cost() {
        let r = replication_cost_experiment(1);
        assert_eq!(r.ratc_replicas, 2);
        assert_eq!(r.baseline_replicas, 3);
        assert!(r.baseline_total_processes > r.ratc_total_processes);
    }

    #[test]
    fn e6_reconfiguration_blocks_ratc_but_not_baseline() {
        let ratc = reconfiguration_experiment(StackKind::Core, 3);
        let baseline = reconfiguration_experiment(StackKind::Baseline, 3);
        assert!(ratc.reconfiguration_required);
        assert!(!baseline.reconfiguration_required);
        assert!(ratc.committed_after_crash > 0, "RATC must recover");
        assert!(baseline.committed_after_crash > 0);
        assert!(
            baseline.recovery_micros < ratc.recovery_micros,
            "the 2f+1 baseline masks the failure while f+1 RATC must reconfigure first"
        );
    }

    #[test]
    fn e7_truncation_bounds_log_memory() {
        let on = truncation_experiment(StackKind::Core, 2, 300, Some(8), 7);
        let off = truncation_experiment(StackKind::Core, 2, 300, None, 7);
        assert_eq!(on.decided, 300);
        assert_eq!(off.decided, 300);
        assert!(on.slots_truncated > 0, "nothing was truncated: {on}");
        // Disabled: the members retain the whole per-shard history.
        assert_eq!(off.max_retained_slots as u64, off.max_log_next);
        // Enabled: retention is bounded by the undecided window + batch,
        // far below the logical history length.
        assert!(
            (on.max_retained_slots as u64) < on.max_log_next / 2,
            "retention not bounded: {on}"
        );
        assert!(on.max_retained_slots < 100, "retention not bounded: {on}");
    }

    /// The unified facade's acceptance criterion: the previously core-only
    /// E7 produces results on every stack through the one generic driver.
    #[test]
    fn e7_truncation_runs_on_all_three_stacks() {
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            let result = truncation_experiment(stack, 2, 64, Some(8), 7);
            assert_eq!(result.decided, 64, "{stack}: lost decisions: {result}");
            assert!(
                result.max_retained_slots as u64 <= result.max_log_next.max(1),
                "{stack}: nonsensical retention: {result}"
            );
            // Every stack bounds its retained state: checkpointed truncation
            // on the RATC stacks, unconditional decided-payload pruning on
            // the baseline.
            assert!(
                (result.max_retained_slots as u64) < result.max_log_next,
                "{stack}: retention not bounded: {result}"
            );
        }
    }

    #[test]
    fn e8_randomized_runs_have_no_violations() {
        let result = invariants_experiment(5, 20, 42);
        assert_eq!(result.invariant_violations, 0);
        assert_eq!(result.spec_violations, 0);
        assert!(result.committed > 0);
    }

    /// Acceptance criterion of the batching pipeline: leader msgs/tx falls
    /// monotonically with the batch size, and batch 16 is at least 4x below
    /// batch 1.
    #[test]
    fn e8_batching_amortises_leader_messages() {
        let tx_count = 192;
        let results: Vec<BatchingResult> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|b| batching_experiment(StackKind::Core, tx_count, *b, 11))
            .collect();
        for result in &results {
            assert_eq!(
                result.committed, tx_count,
                "disjoint transactions must all commit: {result}"
            );
        }
        for pair in results.windows(2) {
            assert!(
                pair[1].leader_msgs_per_txn <= pair[0].leader_msgs_per_txn,
                "leader msgs/tx must fall monotonically with batch size: {} then {}",
                pair[0],
                pair[1]
            );
            assert!(
                pair[1].commits_per_step >= pair[0].commits_per_step,
                "commits/step must rise monotonically with batch size: {} then {}",
                pair[0],
                pair[1]
            );
        }
        let unbatched = &results[0];
        let batch16 = results.last().expect("non-empty");
        assert!(
            unbatched.leader_msgs_per_txn >= 4.0 * batch16.leader_msgs_per_txn,
            "batch 16 must cut leader msgs/tx at least 4x ({} vs {})",
            unbatched.leader_msgs_per_txn,
            batch16.leader_msgs_per_txn
        );
        assert_eq!(unbatched.prepare_batches, 0, "batch 1 must not batch");
        assert!(batch16.prepare_batches > 0);
    }

    /// Acceptance criterion of *adaptive* batching: under sustained load the
    /// batcher grows to its ceiling, so leader msgs/tx lands within 10% of
    /// the fixed batch-16 pipeline; on an idle cluster the batcher shrinks
    /// to the unbatched fast path, so a lone transaction's commit latency
    /// lands within 10% of the unbatched baseline.
    #[test]
    fn e8_adaptive_batching_matches_fixed_when_loaded_and_unbatched_when_idle() {
        use ratc_core::batch::BatchingConfig;
        // Long enough that the doubling ramp (1→2→4→8→16, ~5 extra batches)
        // amortises below the 10% bound — "sustained" is the operative word.
        let tx_count = 1600;
        let fixed = batching_experiment(StackKind::Core, tx_count, 16, 11);
        let adaptive =
            batching_experiment_with(StackKind::Core, tx_count, BatchingConfig::adaptive(16), 11);
        assert_eq!(adaptive.committed, tx_count, "{adaptive}");
        assert!(
            adaptive.leader_msgs_per_txn <= fixed.leader_msgs_per_txn * 1.10,
            "adaptive under sustained load must amortise like fixed batch 16 ({} vs {})",
            adaptive.leader_msgs_per_txn,
            fixed.leader_msgs_per_txn
        );
        assert!(adaptive.prepare_batches > 0, "{adaptive}");

        // Idle: a lone transaction per fresh cluster. The adaptive target
        // starts (and stays) at 1, so the push flushes immediately and pays
        // no batch-timer delay.
        let idle_latency = |batching: BatchingConfig| {
            let mut cluster = ClusterSpec::new(StackKind::Core)
                .with_shards(2)
                .with_seed(7)
                .with_batching(batching)
                .build();
            let payload = Payload::builder()
                .read(Key::new("idle"), Version::ZERO)
                .write(Key::new("idle"), Value::from("v"))
                .commit_version(Version::new(1))
                .build()
                .expect("well-formed");
            cluster.submit(TxId::new(1), payload);
            cluster.run_to_quiescence();
            let latencies = cluster.latencies();
            latencies
                .values()
                .next()
                .map(|l| l.micros as f64)
                .expect("lone transaction decided")
        };
        let unbatched_idle = idle_latency(BatchingConfig::disabled());
        let adaptive_idle = idle_latency(BatchingConfig::adaptive(16));
        assert!(
            adaptive_idle <= unbatched_idle * 1.10,
            "idle adaptive commit latency must match unbatched \
             ({adaptive_idle}us vs {unbatched_idle}us)"
        );
    }

    /// E9 smoke: a small closed-loop run on the threaded backend commits
    /// everything and reports a positive rate. Kept tiny — the real numbers
    /// come from `exp_wallclock` in release mode.
    #[test]
    fn e9_wallclock_closed_loop_commits_everything() {
        let result = wallclock_scaling_experiment(StackKind::Core, 1, 2, 3, 8, 99);
        assert_eq!(result.transactions, 6);
        assert_eq!(
            result.committed, 6,
            "disjoint transactions must commit: {result}"
        );
        assert!(result.committed_per_sec > 0.0, "{result}");
        assert!(result.mean_latency_micros > 0.0, "{result}");
    }

    /// E10 smoke: a small open-loop run with flow control on decides
    /// everything on every stack. Kept tiny — the real sweep comes from
    /// `exp_e10_overload` in release mode.
    #[test]
    fn e10_overload_smoke_decides_everything_on_all_stacks() {
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            let result = overload_experiment(stack, 1, FlowControlConfig::default(), 48, 99);
            assert!(result.flow_enabled);
            assert_eq!(
                result.undecided, 0,
                "{stack}: flow control must drain the open-loop burst: {result}"
            );
            assert_eq!(result.committed, 48, "{stack}: {result}");
            assert!(result.goodput_per_sec > 0.0, "{stack}: {result}");
        }
    }

    /// The unified facade's acceptance criterion: the previously core-only
    /// E8 produces results on every stack, and batching reduces the measured
    /// leader's per-transaction message load on each of them.
    #[test]
    fn e8_batching_runs_on_all_three_stacks() {
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            let unbatched = batching_experiment(stack, 64, 1, 11);
            let batched = batching_experiment(stack, 64, 8, 11);
            assert_eq!(unbatched.committed, 64, "{stack}: {unbatched}");
            assert_eq!(batched.committed, 64, "{stack}: {batched}");
            assert!(
                batched.leader_msgs_per_txn <= unbatched.leader_msgs_per_txn,
                "{stack}: batching must not increase leader load ({} vs {})",
                batched.leader_msgs_per_txn,
                unbatched.leader_msgs_per_txn
            );
        }
    }
}
