//! Workload generators and experiment drivers.
//!
//! This crate turns the protocol crates into *experiments*: each function in
//! [`experiments`] runs one or more full simulated deployments, collects the
//! metrics the paper's claims are stated in (message delays, messages per
//! leader, replicas per shard, abort rates, recovery time, safety violations),
//! and returns a plain-data result that the `ratc-bench` binaries print and
//! that EXPERIMENTS.md records. Experiments are generic over the stack: they
//! take a [`StackKind`] and deploy it through the unified
//! `ratc-harness` facade, so the same driver measures the message-passing
//! protocol, the RDMA protocol and the 2PC-over-Paxos baseline. [`generator`]
//! produces the transaction workloads (uniform and Zipfian key popularity,
//! configurable read/write mixes); [`counterexample`] reproduces the Figure
//! 4a schedule.
//!
//! Every simulated experiment is deterministic given its seed; the E9
//! wall-clock drivers ([`wallclock_experiment`],
//! [`wallclock_scaling_experiment`]) run on the threaded backend instead and
//! report real, host-dependent committed-tx/s.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod counterexample;
pub mod experiments;
pub mod generator;

pub use counterexample::{run_counterexample, CounterexampleOutcome};
pub use experiments::{
    abort_rate_experiment, batching_experiment, invariants_experiment, latency_experiment,
    leader_load_experiment, overload_experiment, overload_sweep, phase_experiment,
    reconfiguration_experiment, replication_cost_experiment, scaling_experiment,
    truncation_experiment, wallclock_experiment, wallclock_scaling_experiment, AbortRateResult,
    BatchingResult, InvariantsResult, LatencyResult, LeaderLoadResult, OverloadResult, PhaseResult,
    ReconfigurationResult, ReplicationCostResult, ScalingResult, TruncationResult, WallclockResult,
};
pub use generator::{KeyDistribution, WorkloadSpec};
pub use ratc_core::flow::FlowControlConfig;
pub use ratc_harness::{ClusterSpec, StackKind, TcsCluster};
