//! Transaction workload generation.

use rand::distributions::Distribution;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use ratc_sim::SimDuration;
use ratc_types::{Key, Payload, TxId, Value, Version};
use serde::{Deserialize, Serialize};

/// Popularity distribution over keys.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Every key is equally likely.
    Uniform,
    /// Zipfian popularity with the given exponent `theta` (larger = more
    /// skewed; 0.99 is the YCSB default).
    Zipfian {
        /// The skew exponent.
        theta: f64,
    },
    /// All accesses go to the first `hot_keys` keys, uniformly.
    Hotspot {
        /// Number of hot keys.
        hot_keys: usize,
    },
}

/// Specification of a synthetic transactional workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of distinct keys.
    pub key_count: usize,
    /// Keys read (and possibly written) per transaction.
    pub keys_per_tx: usize,
    /// Fraction of accessed keys that are also written (0.0–1.0).
    pub write_fraction: f64,
    /// Number of transactions to generate.
    pub tx_count: usize,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            key_count: 1_000,
            keys_per_tx: 3,
            write_fraction: 0.5,
            tx_count: 200,
            distribution: KeyDistribution::Uniform,
        }
    }
}

impl WorkloadSpec {
    /// Generates the payloads of the workload.
    ///
    /// The read versions are all 0 (the generator does not track the evolving
    /// store; the key-value examples do), which makes generated transactions
    /// conflict exactly when they touch a common key that someone writes — the
    /// property the abort-rate experiments need.
    pub fn generate(&self, rng: &mut ChaCha12Rng) -> Vec<(TxId, Payload)> {
        let sampler = KeySampler::new(self.key_count.max(1), self.distribution);
        let mut out = Vec::with_capacity(self.tx_count);
        for i in 0..self.tx_count {
            let tx = TxId::new(i as u64 + 1);
            let mut builder = Payload::builder();
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < self.keys_per_tx.min(self.key_count) {
                let key = sampler.sample(rng);
                if !chosen.contains(&key) {
                    chosen.push(key);
                }
            }
            for (rank, key_index) in chosen.iter().enumerate() {
                let key = Key::new(format!("key-{key_index}"));
                builder = builder.read(key.clone(), Version::ZERO);
                let write = (rank as f64 + 0.5) / self.keys_per_tx as f64 <= self.write_fraction;
                if write {
                    builder = builder.write(key, Value::from(format!("v{i}")));
                }
            }
            let payload = builder
                .commit_version(Version::new(i as u64 + 1))
                .build_unchecked();
            out.push((tx, payload));
        }
        out
    }

    /// Generates the workload as a *paced arrival schedule*: transaction `i`
    /// arrives at offset `i * interval` plus a uniform jitter of up to one
    /// interval. Used by soak drivers (e.g. the chaos nemesis) that submit
    /// traffic over simulated time while faults fire, instead of injecting
    /// everything at time zero.
    pub fn generate_paced(
        &self,
        rng: &mut ChaCha12Rng,
        interval: SimDuration,
    ) -> Vec<(SimDuration, TxId, Payload)> {
        let payloads = self.generate(rng);
        let step = interval.as_micros().max(1);
        payloads
            .into_iter()
            .enumerate()
            .map(|(i, (tx, payload))| {
                let jitter = rng.gen_range(0..step);
                (
                    SimDuration::from_micros(i as u64 * step + jitter),
                    tx,
                    payload,
                )
            })
            .collect()
    }
}

/// Samples key indices according to a [`KeyDistribution`].
#[derive(Debug, Clone)]
struct KeySampler {
    key_count: usize,
    distribution: KeyDistribution,
    /// Cumulative Zipfian weights (only for the Zipfian case).
    zipf_cdf: Vec<f64>,
}

impl KeySampler {
    fn new(key_count: usize, distribution: KeyDistribution) -> Self {
        let zipf_cdf = match distribution {
            KeyDistribution::Zipfian { theta } => {
                let mut weights: Vec<f64> = (1..=key_count)
                    .map(|rank| 1.0 / (rank as f64).powf(theta))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in weights.iter_mut() {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
            _ => Vec::new(),
        };
        KeySampler {
            key_count,
            distribution,
            zipf_cdf,
        }
    }

    fn sample(&self, rng: &mut ChaCha12Rng) -> usize {
        match self.distribution {
            KeyDistribution::Uniform => rng.gen_range(0..self.key_count),
            KeyDistribution::Hotspot { hot_keys } => {
                rng.gen_range(0..hot_keys.clamp(1, self.key_count))
            }
            KeyDistribution::Zipfian { .. } => {
                let u: f64 = rand::distributions::Uniform::new(0.0, 1.0).sample(rng);
                match self
                    .zipf_cdf
                    .binary_search_by(|w| w.partial_cmp(&u).expect("weights are not NaN"))
                {
                    Ok(i) | Err(i) => i.min(self.key_count - 1),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_number_of_transactions() {
        let spec = WorkloadSpec {
            tx_count: 50,
            ..WorkloadSpec::default()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let txs = spec.generate(&mut rng);
        assert_eq!(txs.len(), 50);
        for (_, payload) in &txs {
            assert_eq!(payload.read_count(), spec.keys_per_tx);
            assert!(payload.write_count() <= spec.keys_per_tx);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::default();
        let a = spec.generate(&mut ChaCha12Rng::seed_from_u64(7));
        let b = spec.generate(&mut ChaCha12Rng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = spec.generate(&mut ChaCha12Rng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn paced_arrivals_are_monotone_and_deterministic() {
        let spec = WorkloadSpec {
            tx_count: 20,
            ..WorkloadSpec::default()
        };
        let a = spec.generate_paced(
            &mut ChaCha12Rng::seed_from_u64(5),
            SimDuration::from_micros(200),
        );
        let b = spec.generate_paced(
            &mut ChaCha12Rng::seed_from_u64(5),
            SimDuration::from_micros(200),
        );
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for window in a.windows(2) {
            assert!(window[0].0 < window[1].0, "arrival offsets are monotone");
        }
        assert!(a[0].0 < SimDuration::from_micros(200));
    }

    #[test]
    fn zipfian_skews_towards_low_ranks() {
        let spec = WorkloadSpec {
            key_count: 100,
            keys_per_tx: 1,
            write_fraction: 1.0,
            tx_count: 2_000,
            distribution: KeyDistribution::Zipfian { theta: 1.2 },
        };
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let txs = spec.generate(&mut rng);
        let hot = txs
            .iter()
            .filter(|(_, p)| p.reads_key(&Key::new("key-0")))
            .count();
        assert!(
            hot > txs.len() / 10,
            "the most popular key should absorb a large share of accesses, got {hot}"
        );
    }

    #[test]
    fn hotspot_restricts_key_range() {
        let spec = WorkloadSpec {
            key_count: 100,
            keys_per_tx: 1,
            write_fraction: 1.0,
            tx_count: 100,
            distribution: KeyDistribution::Hotspot { hot_keys: 3 },
        };
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for (_, payload) in spec.generate(&mut rng) {
            let key = payload.reads().next().expect("one key").0.clone();
            let index: usize = key
                .as_str()
                .trim_start_matches("key-")
                .parse()
                .expect("index");
            assert!(index < 3);
        }
    }
}
