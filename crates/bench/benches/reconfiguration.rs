//! Criterion benchmark behind experiment E6: cost of a crash + reconfiguration
//! cycle for the f+1 protocol and of a masked failure for the 2f+1 baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratc_workload::{reconfiguration_experiment, StackKind};

fn bench_reconfiguration(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_reconfiguration");
    group.sample_size(10);
    for stack in [StackKind::Core, StackKind::Baseline] {
        group.bench_with_input(BenchmarkId::from_parameter(stack), &stack, |b, stack| {
            b.iter(|| reconfiguration_experiment(*stack, 3));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconfiguration);
criterion_main!(benches);
