//! Criterion benchmark for the batched certification pipeline (E8): the
//! wall-clock cost of driving a fixed workload through the simulated
//! message-passing cluster as the batch size grows.
//!
//! Batching coalesces the PREPARE/ACCEPT/DECISION rounds, so larger batches
//! execute fewer simulation events per committed transaction and the run
//! finishes faster. The leader msgs/tx figures behind the speedup are
//! reported by the `exp_e8_batching` experiment binary.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ratc_core::batch::BatchingConfig;
use ratc_core::harness::{Cluster, ClusterConfig};
use ratc_types::prelude::*;

const TX_COUNT: usize = 64;

/// Runs one batched cluster to quiescence and returns the committed count.
fn run_cluster(batch: usize) -> usize {
    let mut cluster = Cluster::new(
        ClusterConfig::default()
            .with_shards(2)
            .with_seed(7)
            .with_batching(BatchingConfig::with_batch(batch)),
    );
    let coordinator = cluster.initial_members(ShardId::new(1))[1];
    for i in 0..TX_COUNT {
        let key = Key::new(format!("k{i}"));
        let payload = Payload::builder()
            .read(key.clone(), Version::ZERO)
            .write(key, Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed");
        cluster.submit_via(TxId::new(i as u64 + 1), payload, coordinator);
    }
    cluster.run_to_quiescence();
    cluster.history().committed().count()
}

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_batching");
    for batch in [1usize, 4, 16] {
        let committed = run_cluster(batch);
        assert_eq!(committed, TX_COUNT, "all disjoint transactions commit");
        group.bench_with_input(
            BenchmarkId::new("cluster_run", batch),
            &batch,
            |b, batch| {
                b.iter(|| black_box(run_cluster(*batch)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
