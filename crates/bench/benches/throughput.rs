//! Criterion benchmark behind experiments E2/E4: simulated-cluster throughput
//! as the number of shards grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratc_workload::{scaling_experiment, StackKind};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_scaling");
    group.sample_size(10);
    for shards in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, shards| {
            b.iter(|| scaling_experiment(StackKind::Core, *shards, 2, 100, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
