//! Criterion benchmark behind experiment E1: wall-clock cost of certifying a
//! batch of transactions end-to-end under each protocol, plus the
//! message-delay counts reported to stdout by `exp_e1_latency`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratc_workload::{latency_experiment, StackKind};

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_decision_latency");
    group.sample_size(10);
    for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
        group.bench_with_input(BenchmarkId::from_parameter(stack), &stack, |b, stack| {
            b.iter(|| latency_experiment(*stack, 2, 20, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
