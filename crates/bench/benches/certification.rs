//! Criterion benchmark for the certification functions themselves (E5's
//! inner loop): cost of the leader's vote `f_s ⊓ g_s` as the number of
//! previously committed/prepared payloads grows.
//!
//! Two implementations are measured side by side on identical histories:
//!
//! * `scan` — the paper's set-based formulation: collect `L1`/`L2` by
//!   scanning the whole certification log, then run the pure functions
//!   (O(|log| · |payload|) per vote);
//! * `indexed` — the incremental `IndexedCertifier` maintained by the log at
//!   phase transitions (O(|payload|) per vote).
//!
//! The per-vote cost of `scan` grows linearly with the history (and the gap
//! reaches several orders of magnitude at 10_000 payloads), while `indexed`
//! stays flat — that flatness is what makes 10k+-transaction experiment
//! histories practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratc_core::log::{CertificationLog, LogEntry, TxPhase};
use ratc_types::prelude::*;

/// Decisions trail appends by this many slots in the E7 steady-state model.
const E7_DECIDE_LAG: usize = 64;
/// Truncation folds the decided prefix in batches of this many slots.
const E7_TRUNCATE_BATCH: u64 = 256;

fn payloads(n: usize) -> Vec<Payload> {
    (0..n)
        .map(|i| {
            Payload::builder()
                .read(Key::new(format!("k{}", i % 64)), Version::new(i as u64))
                .write(Key::new(format!("k{}", i % 64)), Value::from("v"))
                .commit_version(Version::new(i as u64 + 1))
                .build()
                .expect("well-formed")
        })
        .collect()
}

fn entry(tx: u64, payload: Payload) -> LogEntry {
    LogEntry {
        tx: TxId::new(tx),
        payload,
        vote: Decision::Commit,
        dec: None,
        phase: TxPhase::Prepared,
        shards: vec![ShardId::new(0)],
        client: ProcessId::new(0),
    }
}

/// Builds an indexed certification log whose first half of `history` is
/// decided commit (enters `L1`) and second half is prepared with a commit
/// vote (enters `L2`) — the same split the `scan` benchmark uses.
fn indexed_log(history: &[Payload]) -> CertificationLog {
    let mut log =
        CertificationLog::with_certifier(Serializability::new().indexed_certifier(ShardId::new(0)));
    let half = history.len() / 2;
    for (i, payload) in history.iter().enumerate() {
        let pos = log.append(entry(i as u64 + 1, payload.clone()));
        if i < half {
            log.decide(pos, Decision::Commit);
        }
    }
    log
}

/// A candidate that commits cleanly: it touches a key no history payload
/// writes or reads, so the set-based scans cannot exit early and pay their
/// full O(|history|) cost — the common case in low-contention workloads.
fn candidate() -> Payload {
    Payload::builder()
        .read(Key::new("cold"), Version::new(1))
        .write(Key::new("cold"), Value::from("x"))
        .commit_version(Version::new(1_000_000))
        .build()
        .expect("well-formed")
}

/// Replays an `n`-transaction history through a leader-style indexed log in
/// which decisions trail appends by [`E7_DECIDE_LAG`] slots, truncating the
/// decided prefix (batch [`E7_TRUNCATE_BATCH`]) when asked to. This is the
/// steady state of the E2/E4 long-history experiments.
fn windowed_log(history: &[Payload], truncate: bool) -> CertificationLog {
    let mut log =
        CertificationLog::with_certifier(Serializability::new().indexed_certifier(ShardId::new(0)));
    for (i, payload) in history.iter().enumerate() {
        log.append(entry(i as u64 + 1, payload.clone()));
        if i >= E7_DECIDE_LAG {
            log.decide(Position::new((i - E7_DECIDE_LAG) as u64), Decision::Commit);
        }
        if truncate && log.decided_frontier().as_u64() >= log.base().as_u64() + E7_TRUNCATE_BATCH {
            log.truncate_to(log.decided_frontier());
        }
    }
    log
}

/// E7: steady-state memory and vote latency with checkpointed truncation on
/// vs off, at 10k and 100k payloads. The retained-slot counts (the memory
/// side of the experiment) are printed alongside the timing output: with
/// truncation the log holds only the undecided window plus at most one fold
/// batch, regardless of history length.
fn bench_truncation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_truncation");
    let candidate = candidate();
    for size in [10_000usize, 100_000] {
        let history = payloads(size);
        for (label, truncate) in [("off", false), ("on", true)] {
            let log = windowed_log(&history, truncate);
            println!(
                "e7_truncation/{label}/{size}: retained log slots = {} (base {}, next {})",
                log.len(),
                log.base(),
                log.next()
            );
            group.bench_with_input(
                BenchmarkId::new(format!("vote_truncation_{label}"), size),
                &size,
                |b, _| {
                    b.iter(|| log.vote_at(log.next(), &candidate));
                },
            );
        }
    }
    group.finish();
}

fn bench_certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_certification_function");
    let candidate = candidate();
    for size in [10usize, 100, 1_000, 10_000] {
        let history = payloads(size);

        // The paper's formulation: pure functions over explicit payload sets
        // (the same committed/prepared split the indexed log uses).
        let half = history.len() / 2;
        let committed_refs: Vec<&Payload> = history[..half].iter().collect();
        let prepared_refs: Vec<&Payload> = history[half..].iter().collect();
        let certifier = Serializability::new().shard_certifier(ShardId::new(0));
        group.bench_with_input(BenchmarkId::new("scan", size), &size, |b, _| {
            b.iter(|| certifier.vote(&committed_refs, &prepared_refs, &candidate));
        });

        // The same vote including the cost of collecting L1/L2 from the log —
        // what a leader actually paid per transaction before the index.
        let log = indexed_log(&history);
        group.bench_with_input(BenchmarkId::new("scan_from_log", size), &size, |b, _| {
            b.iter(|| {
                let next = log.next();
                let committed = log.committed_payloads_before(next);
                let prepared = log.prepared_payloads_before(next);
                certifier.vote(&committed, &prepared, &candidate)
            });
        });

        // The incremental index: O(|payload|) regardless of history size.
        group.bench_with_input(BenchmarkId::new("indexed", size), &size, |b, _| {
            b.iter(|| log.vote_at(log.next(), &candidate));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_certification, bench_truncation);
criterion_main!(benches);
