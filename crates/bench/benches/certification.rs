//! Criterion benchmark for the certification functions themselves (E5's
//! inner loop): cost of `f_s ⊓ g_s` as the number of previously
//! committed/prepared payloads grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratc_types::prelude::*;

fn payloads(n: usize) -> Vec<Payload> {
    (0..n)
        .map(|i| {
            Payload::builder()
                .read(Key::new(format!("k{}", i % 64)), Version::new(i as u64))
                .write(Key::new(format!("k{}", i % 64)), Value::from("v"))
                .commit_version(Version::new(i as u64 + 1))
                .build()
                .expect("well-formed")
        })
        .collect()
}

fn bench_certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_certification_function");
    let candidate = Payload::builder()
        .read(Key::new("k1"), Version::new(1))
        .write(Key::new("k1"), Value::from("x"))
        .commit_version(Version::new(1_000_000))
        .build()
        .expect("well-formed");
    for size in [10usize, 100, 1_000] {
        let history = payloads(size);
        let refs: Vec<&Payload> = history.iter().collect();
        let certifier = Serializability::new().shard_certifier(ShardId::new(0));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| certifier.vote(&refs, &refs, &candidate));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_certification);
criterion_main!(benches);
