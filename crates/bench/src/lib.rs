//! Benchmark harness for the RATC reproduction.
//!
//! This crate contains no library logic of its own; it hosts
//!
//! * one binary per experiment of EXPERIMENTS.md (`exp_e1_latency` …
//!   `exp_e8_invariants`, plus `exp_e8_batching` for the batched
//!   certification pipeline), each of which runs the corresponding driver
//!   from `ratc-workload` and prints the table recorded in EXPERIMENTS.md,
//!   and
//! * Criterion benchmarks (`benches/`) measuring the wall-clock cost of the
//!   simulated protocols and of the certification functions themselves.
//!
//! Run all experiment binaries with
//! `for b in e1_latency e2_leader_load e3_replication_cost e4_scaling e5_aborts e6_reconfig e7_counterexample e8_invariants e8_batching; do cargo run --release -p ratc-bench --bin exp_$b; done`.

#![deny(missing_docs)]

/// Prints a section header used by every experiment binary.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!("=== {id}: {title} ===");
    println!("paper: {paper_claim}");
    println!();
}

/// Hand-rolled JSON rendering of experiment results for the `--json` flags
/// of `exp_matrix` and `exp_wallclock` (and the committed `BENCH_*.json`
/// trajectory). The workspace deliberately carries no JSON dependency, and
/// the result structs are flat records of numbers and short known strings,
/// so `format!` is all the serialisation needed.
pub mod json {
    use ratc_chaos::{AvailabilityResult, BlackoutResult};
    use ratc_sim::{Blackout, CtrlEvent, Phase};
    use ratc_workload::{
        BatchingResult, LatencyResult, OverloadResult, PhaseResult, TruncationResult,
        WallclockResult,
    };

    /// Joins already-rendered JSON values into an array.
    pub fn array(items: &[String]) -> String {
        format!("[{}]", items.join(","))
    }

    /// Escapes a string for embedding in a JSON string literal (quotes,
    /// backslashes and control characters — all the labels and notes here
    /// are ASCII identifiers or rendered fault events, so this is rarely
    /// more than a pass-through).
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders per-message-type `(label, msgs/tx)` pairs as a JSON object.
    fn msgs_per_tx(rows: &[(String, f64)]) -> String {
        let fields: Vec<String> = rows
            .iter()
            .map(|(label, per_tx)| format!(r#""{}":{}"#, escape(label), per_tx))
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    /// One E1 latency row.
    pub fn latency(r: &LatencyResult) -> String {
        format!(
            r#"{{"stack":"{}","shards":{},"transactions":{},"median_hops":{},"median_coordinator_hops":{},"mean_micros":{}}}"#,
            r.stack,
            r.shards,
            r.transactions,
            r.median_hops,
            r.median_coordinator_hops,
            r.mean_micros
        )
    }

    /// One E7 log-retention row.
    pub fn truncation(r: &TruncationResult) -> String {
        format!(
            r#"{{"stack":"{}","tx_count":{},"decided":{},"truncation_enabled":{},"max_retained_slots":{},"max_log_next":{},"slots_truncated":{}}}"#,
            r.stack,
            r.tx_count,
            r.decided,
            r.truncation_enabled,
            r.max_retained_slots,
            r.max_log_next,
            r.slots_truncated
        )
    }

    /// One E8 batching row.
    pub fn batching(r: &BatchingResult) -> String {
        format!(
            r#"{{"stack":"{}","batch_size":{},"tx_count":{},"committed":{},"leader_msgs_per_txn":{},"commits_per_step":{},"prepare_batches":{}}}"#,
            r.stack,
            r.batch_size,
            r.tx_count,
            r.committed,
            r.leader_msgs_per_txn,
            r.commits_per_step,
            r.prepare_batches
        )
    }

    /// One E9 wall-clock throughput row. `latency_unit` labels the unit of
    /// every latency in the row (`"wall_micros"` or `"virtual_micros"`).
    pub fn wallclock(r: &WallclockResult) -> String {
        format!(
            r#"{{"stack":"{}","shards":{},"batch":{},"closed_loop":{},"transactions":{},"committed":{},"aborted":{},"undecided":{},"wall_secs":{},"committed_per_sec":{},"mean_latency_micros":{},"p99_latency_micros":{},"latency_unit":"{}"}}"#,
            r.stack,
            r.shards,
            r.batch,
            r.closed_loop,
            r.transactions,
            r.committed,
            r.aborted,
            r.undecided,
            r.wall_secs,
            r.committed_per_sec,
            r.mean_latency_micros,
            r.p99_latency_micros,
            r.latency_unit.as_str()
        )
    }

    /// One E10 overload-sweep row. `latency_unit` labels the unit of every
    /// latency in the row; `msgs_per_tx` maps each message type to the mean
    /// number delivered per decided transaction.
    pub fn overload(r: &OverloadResult) -> String {
        format!(
            r#"{{"stack":"{}","shards":{},"flow_enabled":{},"depth":{},"committed":{},"aborted":{},"undecided":{},"wall_secs":{},"goodput_per_sec":{},"p99_latency_micros":{},"msgs_per_tx":{},"latency_unit":"{}"}}"#,
            r.stack,
            r.shards,
            r.flow_enabled,
            r.depth,
            r.committed,
            r.aborted,
            r.undecided,
            r.wall_secs,
            r.goodput_per_sec,
            r.p99_latency_micros,
            msgs_per_tx(&r.msgs_per_tx),
            r.latency_unit.as_str()
        )
    }

    /// One E9 chaos-availability row: throughput and recovery under the
    /// seed-driven nemesis, with the blackout fields derived from the
    /// control-plane observability stream.
    pub fn availability(r: &AvailabilityResult) -> String {
        format!(
            r#"{{"stack":"{}","intensity":{},"submitted":{},"committed":{},"commits_per_milli":{},"recovery_micros":{},"blackout_micros":{},"time_to_recover_micros":{},"msgs_per_tx":{},"ok":{}}}"#,
            r.stack,
            r.intensity,
            r.submitted,
            r.committed,
            r.commits_per_milli,
            r.recovery_micros,
            r.blackout_micros,
            r.time_to_recover_micros,
            msgs_per_tx(&r.msgs_per_tx),
            r.ok
        )
    }

    /// One E12 blackout-matrix row: per-shard availability windows and
    /// time-to-recover for one (stack, scenario) cell.
    pub fn blackout(r: &BlackoutResult) -> String {
        format!(
            r#"{{"stack":"{}","scenario":"{}","submitted":{},"committed":{},"blackout_micros":{},"time_to_recover_micros":{},"windows":{},"unclosed_windows":{},"ctrl_events":{},"msgs_per_tx":{},"ok":{}}}"#,
            r.stack,
            r.scenario,
            r.submitted,
            r.committed,
            r.blackout_micros,
            r.time_to_recover_micros,
            r.windows,
            r.unclosed_windows,
            r.ctrl_events,
            msgs_per_tx(&r.msgs_per_tx),
            r.ok
        )
    }

    /// Renders a control-plane event stream plus its availability windows as
    /// a Chrome trace-event JSON document (the `traceEvents` array format),
    /// loadable in `chrome://tracing` and Perfetto.
    ///
    /// * Each [`CtrlEvent`] becomes an instant event (`"ph":"i"`) on the
    ///   track of the process that recorded it (`tid` = process id), with
    ///   the shard, detail and note in `args`.
    /// * Each closed [`Blackout`] becomes a complete event (`"ph":"X"`) with
    ///   a duration on its shard's track (`tid` = shard id); an unclosed
    ///   window becomes an instant event at its start.
    ///
    /// Timestamps are microseconds (the native `ts` unit of the format), in
    /// whatever clock the cluster ran on (virtual or wall).
    pub fn chrome_trace(ctrl: &[CtrlEvent], blackouts: &[Blackout]) -> String {
        let mut events: Vec<String> = Vec::with_capacity(ctrl.len() + blackouts.len());
        for event in ctrl {
            let shard = match event.shard {
                Some(shard) => format!(r#""{shard}""#),
                None => String::from("null"),
            };
            events.push(format!(
                r#"{{"name":"{}","cat":"ctrl","ph":"i","s":"p","ts":{},"pid":0,"tid":{},"args":{{"shard":{},"detail":{},"note":"{}"}}}}"#,
                event.milestone,
                event.at_micros,
                event.by.as_u64(),
                shard,
                event.detail,
                escape(&event.note)
            ));
        }
        for blackout in blackouts {
            match blackout.end_micros {
                Some(end) => events.push(format!(
                    r#"{{"name":"blackout {}","cat":"blackout","ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":{{"cause":"{}","last_degrade_micros":{}}}}}"#,
                    blackout.shard,
                    blackout.start_micros,
                    end - blackout.start_micros,
                    blackout.shard.as_u32(),
                    blackout.cause,
                    blackout.last_degrade_micros
                )),
                None => events.push(format!(
                    r#"{{"name":"blackout {} (unrecovered)","cat":"blackout","ph":"i","s":"p","ts":{},"pid":1,"tid":{},"args":{{"cause":"{}"}}}}"#,
                    blackout.shard,
                    blackout.start_micros,
                    blackout.shard.as_u32(),
                    blackout.cause
                )),
            }
        }
        format!(
            r#"{{"traceEvents":{},"displayTimeUnit":"ms"}}"#,
            array(&events)
        )
    }

    /// One E11 phase-attribution row: mean per-phase latencies keyed by
    /// phase name, plus the mean end-to-end total they sum to (up to
    /// floating-point rounding) and the unit of every latency in the row.
    pub fn phases(r: &PhaseResult) -> String {
        let phase_fields: Vec<String> = Phase::ALL
            .iter()
            .zip(r.mean_phase_micros.iter())
            .map(|(phase, mean)| format!(r#""mean_{}_micros":{}"#, phase.as_str(), mean))
            .collect();
        format!(
            r#"{{"stack":"{}","execution":"{}","shards":{},"depth":{},"committed":{},"measured":{},{},"mean_total_micros":{},"mean_retries":{},"latency_unit":"{}"}}"#,
            r.stack,
            match r.execution {
                ratc_sim::ExecutionMode::Sim => "sim",
                ratc_sim::ExecutionMode::Threads => "threads",
            },
            r.shards,
            r.depth,
            r.committed,
            r.measured,
            phase_fields.join(","),
            r.mean_total_micros,
            r.mean_retries,
            r.latency_unit.as_str()
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use ratc_workload::StackKind;

        #[test]
        fn wallclock_rows_render_flat_json_objects() {
            let row = wallclock(&WallclockResult {
                stack: StackKind::Core,
                shards: 4,
                batch: 32,
                closed_loop: true,
                transactions: 100,
                committed: 100,
                aborted: 0,
                undecided: 0,
                wall_secs: 0.5,
                committed_per_sec: 200.0,
                mean_latency_micros: 1234.5,
                p99_latency_micros: 2500.0,
                latency_unit: ratc_sim::LatencyUnit::WallMicros,
            });
            assert!(row.starts_with('{') && row.ends_with('}'), "{row}");
            assert!(row.contains(r#""stack":"ratc-mp""#), "{row}");
            assert!(row.contains(r#""closed_loop":true"#), "{row}");
            assert!(row.contains(r#""committed_per_sec":200"#), "{row}");
            assert!(row.contains(r#""latency_unit":"wall_micros""#), "{row}");
            assert_eq!(array(&[String::from("1"), String::from("2")]), "[1,2]");
        }

        #[test]
        fn chrome_trace_renders_instants_and_spans_with_monotone_ts() {
            use ratc_sim::{Blackout, CtrlEvent, CtrlMilestone};
            use ratc_types::{ProcessId, ShardId};
            let ctrl = vec![
                CtrlEvent {
                    at_micros: 10,
                    by: ProcessId::new(7),
                    milestone: CtrlMilestone::Crash,
                    shard: Some(ShardId::new(1)),
                    detail: 0,
                    note: String::from("crash-leader(s1) \"quoted\""),
                },
                CtrlEvent {
                    at_micros: 50,
                    by: ProcessId::new(3),
                    milestone: CtrlMilestone::ShardOperational,
                    shard: None,
                    detail: 2,
                    note: String::new(),
                },
            ];
            let blackouts = vec![
                Blackout {
                    shard: ShardId::new(1),
                    start_micros: 10,
                    last_degrade_micros: 10,
                    end_micros: Some(60),
                    cause: CtrlMilestone::Crash,
                },
                Blackout {
                    shard: ShardId::new(0),
                    start_micros: 20,
                    last_degrade_micros: 20,
                    end_micros: None,
                    cause: CtrlMilestone::FaultInjected,
                },
            ];
            let trace = chrome_trace(&ctrl, &blackouts);
            assert!(trace.starts_with(r#"{"traceEvents":["#), "{trace}");
            assert!(trace.ends_with('}'), "{trace}");
            // The note's quote must be escaped, or the document is invalid.
            assert!(trace.contains(r#"\"quoted\""#), "{trace}");
            assert!(trace.contains(r#""ph":"i""#), "{trace}");
            assert!(trace.contains(r#""ph":"X""#), "{trace}");
            assert!(trace.contains(r#""dur":50"#), "{trace}");
            assert!(trace.contains(r#""name":"crash""#), "{trace}");
            // Balanced quotes and braces — the no-dependency stand-in for a
            // full parse (CI additionally round-trips the real exporter
            // output through a JSON parser).
            assert_eq!(trace.matches('{').count(), trace.matches('}').count());
            assert_eq!(trace.replace("\\\"", "").matches('"').count() % 2, 0);
            // `ts` values appear in recording order: the ctrl stream is
            // time-ordered, so the rendered timestamps are monotone.
            let ts: Vec<u64> = trace
                .match_indices(r#""ts":"#)
                .map(|(i, _)| {
                    let rest = &trace[i + 5..];
                    let end = rest.find([',', '}']).expect("delimited");
                    rest[..end].parse().expect("integer ts")
                })
                .collect();
            assert_eq!(ts.len(), 4, "{trace}");
            assert!(ts[0] <= ts[1], "{trace}");
        }

        #[test]
        fn availability_and_blackout_rows_carry_msgs_per_tx() {
            use ratc_chaos::{BlackoutScenario, Stack};
            let per_tx = vec![
                (String::from("Certify"), 1.0),
                (String::from("Prepare"), 1.5),
            ];
            let row = blackout(&BlackoutResult {
                stack: Stack::Core,
                scenario: BlackoutScenario::LeaderCrash,
                submitted: 60,
                committed: 28,
                blackout_micros: 27_886,
                time_to_recover_micros: 27_886,
                windows: 1,
                unclosed_windows: 0,
                ctrl_events: 5,
                msgs_per_tx: per_tx.clone(),
                ok: true,
            });
            assert!(row.contains(r#""scenario":"leader-crash""#), "{row}");
            assert!(
                row.contains(r#""msgs_per_tx":{"Certify":1,"Prepare":1.5}"#),
                "{row}"
            );
            let row = availability(&AvailabilityResult {
                stack: Stack::Baseline,
                intensity: 40,
                submitted: 60,
                committed: 30,
                commits_per_milli: 0.7,
                recovery_micros: 1_000,
                blackout_micros: 500,
                time_to_recover_micros: 400,
                msgs_per_tx: per_tx,
                ok: true,
            });
            assert!(row.contains(r#""blackout_micros":500"#), "{row}");
            assert!(row.contains(r#""time_to_recover_micros":400"#), "{row}");
        }

        #[test]
        fn phase_rows_name_every_phase_and_the_unit() {
            let row = phases(&ratc_workload::PhaseResult {
                stack: StackKind::Baseline,
                execution: ratc_sim::ExecutionMode::Sim,
                shards: 2,
                depth: 64,
                committed: 64,
                measured: 64,
                mean_phase_micros: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                mean_total_micros: 21.0,
                mean_retries: 0.5,
                latency_unit: ratc_sim::LatencyUnit::VirtualMicros,
            });
            for phase in ratc_sim::Phase::ALL {
                assert!(
                    row.contains(&format!(r#""mean_{}_micros":"#, phase.as_str())),
                    "{row}"
                );
            }
            assert!(row.contains(r#""execution":"sim""#), "{row}");
            assert!(row.contains(r#""latency_unit":"virtual_micros""#), "{row}");
        }
    }
}
