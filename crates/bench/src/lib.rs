//! Benchmark harness for the RATC reproduction.
//!
//! This crate contains no library logic of its own; it hosts
//!
//! * one binary per experiment of EXPERIMENTS.md (`exp_e1_latency` …
//!   `exp_e8_invariants`, plus `exp_e8_batching` for the batched
//!   certification pipeline), each of which runs the corresponding driver
//!   from `ratc-workload` and prints the table recorded in EXPERIMENTS.md,
//!   and
//! * Criterion benchmarks (`benches/`) measuring the wall-clock cost of the
//!   simulated protocols and of the certification functions themselves.
//!
//! Run all experiment binaries with
//! `for b in e1_latency e2_leader_load e3_replication_cost e4_scaling e5_aborts e6_reconfig e7_counterexample e8_invariants e8_batching; do cargo run --release -p ratc-bench --bin exp_$b; done`.

#![deny(missing_docs)]

/// Prints a section header used by every experiment binary.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!("=== {id}: {title} ===");
    println!("paper: {paper_claim}");
    println!();
}

/// Hand-rolled JSON rendering of experiment results for the `--json` flags
/// of `exp_matrix` and `exp_wallclock` (and the committed `BENCH_*.json`
/// trajectory). The workspace deliberately carries no JSON dependency, and
/// the result structs are flat records of numbers and short known strings,
/// so `format!` is all the serialisation needed.
pub mod json {
    use ratc_sim::Phase;
    use ratc_workload::{
        BatchingResult, LatencyResult, OverloadResult, PhaseResult, TruncationResult,
        WallclockResult,
    };

    /// Joins already-rendered JSON values into an array.
    pub fn array(items: &[String]) -> String {
        format!("[{}]", items.join(","))
    }

    /// One E1 latency row.
    pub fn latency(r: &LatencyResult) -> String {
        format!(
            r#"{{"stack":"{}","shards":{},"transactions":{},"median_hops":{},"median_coordinator_hops":{},"mean_micros":{}}}"#,
            r.stack,
            r.shards,
            r.transactions,
            r.median_hops,
            r.median_coordinator_hops,
            r.mean_micros
        )
    }

    /// One E7 log-retention row.
    pub fn truncation(r: &TruncationResult) -> String {
        format!(
            r#"{{"stack":"{}","tx_count":{},"decided":{},"truncation_enabled":{},"max_retained_slots":{},"max_log_next":{},"slots_truncated":{}}}"#,
            r.stack,
            r.tx_count,
            r.decided,
            r.truncation_enabled,
            r.max_retained_slots,
            r.max_log_next,
            r.slots_truncated
        )
    }

    /// One E8 batching row.
    pub fn batching(r: &BatchingResult) -> String {
        format!(
            r#"{{"stack":"{}","batch_size":{},"tx_count":{},"committed":{},"leader_msgs_per_txn":{},"commits_per_step":{},"prepare_batches":{}}}"#,
            r.stack,
            r.batch_size,
            r.tx_count,
            r.committed,
            r.leader_msgs_per_txn,
            r.commits_per_step,
            r.prepare_batches
        )
    }

    /// One E9 wall-clock throughput row. `latency_unit` labels the unit of
    /// every latency in the row (`"wall_micros"` or `"virtual_micros"`).
    pub fn wallclock(r: &WallclockResult) -> String {
        format!(
            r#"{{"stack":"{}","shards":{},"batch":{},"closed_loop":{},"transactions":{},"committed":{},"aborted":{},"undecided":{},"wall_secs":{},"committed_per_sec":{},"mean_latency_micros":{},"p99_latency_micros":{},"latency_unit":"{}"}}"#,
            r.stack,
            r.shards,
            r.batch,
            r.closed_loop,
            r.transactions,
            r.committed,
            r.aborted,
            r.undecided,
            r.wall_secs,
            r.committed_per_sec,
            r.mean_latency_micros,
            r.p99_latency_micros,
            r.latency_unit.as_str()
        )
    }

    /// One E10 overload-sweep row. `latency_unit` labels the unit of every
    /// latency in the row.
    pub fn overload(r: &OverloadResult) -> String {
        format!(
            r#"{{"stack":"{}","shards":{},"flow_enabled":{},"depth":{},"committed":{},"aborted":{},"undecided":{},"wall_secs":{},"goodput_per_sec":{},"p99_latency_micros":{},"latency_unit":"{}"}}"#,
            r.stack,
            r.shards,
            r.flow_enabled,
            r.depth,
            r.committed,
            r.aborted,
            r.undecided,
            r.wall_secs,
            r.goodput_per_sec,
            r.p99_latency_micros,
            r.latency_unit.as_str()
        )
    }

    /// One E11 phase-attribution row: mean per-phase latencies keyed by
    /// phase name, plus the mean end-to-end total they sum to (up to
    /// floating-point rounding) and the unit of every latency in the row.
    pub fn phases(r: &PhaseResult) -> String {
        let phase_fields: Vec<String> = Phase::ALL
            .iter()
            .zip(r.mean_phase_micros.iter())
            .map(|(phase, mean)| format!(r#""mean_{}_micros":{}"#, phase.as_str(), mean))
            .collect();
        format!(
            r#"{{"stack":"{}","execution":"{}","shards":{},"depth":{},"committed":{},"measured":{},{},"mean_total_micros":{},"mean_retries":{},"latency_unit":"{}"}}"#,
            r.stack,
            match r.execution {
                ratc_sim::ExecutionMode::Sim => "sim",
                ratc_sim::ExecutionMode::Threads => "threads",
            },
            r.shards,
            r.depth,
            r.committed,
            r.measured,
            phase_fields.join(","),
            r.mean_total_micros,
            r.mean_retries,
            r.latency_unit.as_str()
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use ratc_workload::StackKind;

        #[test]
        fn wallclock_rows_render_flat_json_objects() {
            let row = wallclock(&WallclockResult {
                stack: StackKind::Core,
                shards: 4,
                batch: 32,
                closed_loop: true,
                transactions: 100,
                committed: 100,
                aborted: 0,
                undecided: 0,
                wall_secs: 0.5,
                committed_per_sec: 200.0,
                mean_latency_micros: 1234.5,
                p99_latency_micros: 2500.0,
                latency_unit: ratc_sim::LatencyUnit::WallMicros,
            });
            assert!(row.starts_with('{') && row.ends_with('}'), "{row}");
            assert!(row.contains(r#""stack":"ratc-mp""#), "{row}");
            assert!(row.contains(r#""closed_loop":true"#), "{row}");
            assert!(row.contains(r#""committed_per_sec":200"#), "{row}");
            assert!(row.contains(r#""latency_unit":"wall_micros""#), "{row}");
            assert_eq!(array(&[String::from("1"), String::from("2")]), "[1,2]");
        }

        #[test]
        fn phase_rows_name_every_phase_and_the_unit() {
            let row = phases(&ratc_workload::PhaseResult {
                stack: StackKind::Baseline,
                execution: ratc_sim::ExecutionMode::Sim,
                shards: 2,
                depth: 64,
                committed: 64,
                measured: 64,
                mean_phase_micros: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                mean_total_micros: 21.0,
                mean_retries: 0.5,
                latency_unit: ratc_sim::LatencyUnit::VirtualMicros,
            });
            for phase in ratc_sim::Phase::ALL {
                assert!(
                    row.contains(&format!(r#""mean_{}_micros":"#, phase.as_str())),
                    "{row}"
                );
            }
            assert!(row.contains(r#""execution":"sim""#), "{row}");
            assert!(row.contains(r#""latency_unit":"virtual_micros""#), "{row}");
        }
    }
}
