//! Benchmark harness for the RATC reproduction.
//!
//! This crate contains no library logic of its own; it hosts
//!
//! * one binary per experiment of EXPERIMENTS.md (`exp_e1_latency` …
//!   `exp_e8_invariants`, plus `exp_e8_batching` for the batched
//!   certification pipeline), each of which runs the corresponding driver
//!   from `ratc-workload` and prints the table recorded in EXPERIMENTS.md,
//!   and
//! * Criterion benchmarks (`benches/`) measuring the wall-clock cost of the
//!   simulated protocols and of the certification functions themselves.
//!
//! Run all experiment binaries with
//! `for b in e1_latency e2_leader_load e3_replication_cost e4_scaling e5_aborts e6_reconfig e7_counterexample e8_invariants e8_batching; do cargo run --release -p ratc-bench --bin exp_$b; done`.

#![deny(missing_docs)]

/// Prints a section header used by every experiment binary.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!("=== {id}: {title} ===");
    println!("paper: {paper_claim}");
    println!();
}
