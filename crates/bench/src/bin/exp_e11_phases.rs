//! E11: commit-path phase-latency attribution across the three stacks.
//!
//! Every run enables the observability layer, folds each transaction's
//! lifecycle timeline (submitted → admitted → certify-sent → shard votes →
//! accept quorum → decided → client-learned) into a six-phase latency
//! breakdown, and reports the mean per-phase latency. The breakdown is
//! telescoping — the driver asserts that on every transaction the phases sum
//! *exactly* to the end-to-end latency — so each row shows where its
//! configuration spends the commit path: idle runs isolate the pure protocol
//! delays (the paper's 5 message delays for RATC against the baseline's 7),
//! saturated runs add certification pipelining, and overloaded runs shift
//! time into the admission phase, where flow control parks excess load.
//!
//! The matrix is 3 stacks × {Sim, Threads} × {idle, saturated, overload}.
//! Sim rows are deterministic virtual-time microseconds (seed-reproducible);
//! Threads rows are wall-clock microseconds from the same protocol code on
//! the threaded backend. Every row labels its unit.
//!
//! `--json` replaces the table with one machine-readable JSON object
//! (committed as `BENCH_8.json`); `--smoke` runs one idle Sim row per stack,
//! for CI.

use ratc_sim::ExecutionMode;
use ratc_workload::{phase_experiment, PhaseResult, StackKind};

const STACKS: [StackKind; 3] = [StackKind::Core, StackKind::Rdma, StackKind::Baseline];
const MODES: [ExecutionMode; 2] = [ExecutionMode::Sim, ExecutionMode::Threads];
/// Offered-load regimes: 1 = idle (pure protocol path), 64 = saturated (the
/// default admission window, kept exactly full), 256 = overload (admission
/// queueing and backoff dominate).
const DEPTHS: [usize; 3] = [1, 64, 256];
const SHARDS: u32 = 2;
const SEED: u64 = 42;

fn main() {
    let json = std::env::args().any(|arg| arg == "--json");
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    if !json {
        ratc_bench::header(
            "E11",
            "commit-path phase-latency attribution",
            "per-phase timeline attribution localises the RATC latency win to \
             certification (delays 2-3 against the baseline's 2PC + Paxos \
             rounds) and shows overload time pooling in admission",
        );
    }

    let mut results: Vec<PhaseResult> = Vec::new();
    if smoke {
        for stack in STACKS {
            results.push(phase_experiment(stack, ExecutionMode::Sim, SHARDS, 1, SEED));
        }
    } else {
        for stack in STACKS {
            for mode in MODES {
                for depth in DEPTHS {
                    results.push(phase_experiment(stack, mode, SHARDS, depth, SEED));
                }
            }
        }
    }

    if json {
        let rows: Vec<String> = results.iter().map(ratc_bench::json::phases).collect();
        println!(
            r#"{{"experiment":"phases","shards":{},"depths":{:?},"seed":{},"rows":{}}}"#,
            SHARDS,
            DEPTHS,
            SEED,
            ratc_bench::json::array(&rows),
        );
        return;
    }

    for result in &results {
        println!("  {result}");
    }
}
