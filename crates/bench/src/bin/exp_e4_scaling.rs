//! E4: throughput/latency as the number of shards per transaction grows.

use ratc_workload::{scaling_experiment, StackKind};

fn main() {
    ratc_bench::header(
        "E4",
        "scaling with shards per transaction",
        "the failure-free message flow of Figure 2a involves every shard of the \
         transaction; latency stays flat while total message cost grows with the \
         number of involved shards",
    );
    for shards in [2u32, 4, 8] {
        for keys_per_tx in [1usize, 2, 4] {
            println!(
                "{}",
                scaling_experiment(StackKind::Core, shards, keys_per_tx, 300, 42)
            );
        }
        println!();
    }
}
