//! E1: client-visible decision latency in message delays.

use ratc_workload::{latency_experiment, StackKind};

fn main() {
    ratc_bench::header(
        "E1",
        "decision latency in message delays",
        "RATC reaches a decision in 5 message delays (4 with a co-located client); \
         the vanilla 2PC-over-Paxos baseline needs 7 (§1, §3)",
    );
    for shards in [2, 4, 8] {
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            println!("{}", latency_experiment(stack, shards, 50, 42));
        }
        println!();
    }
}
