//! E9: wall-clock throughput on the threaded execution backend — the repo's
//! first *real* performance numbers (committed as `BENCH_6.json`).
//!
//! Two regimes per stack:
//!
//! * **open loop** (capacity): every transaction is submitted up front, so
//!   the host's cores are saturated and committed-tx/s measures raw protocol
//!   cost. On a single-core host this number is CPU-bound and roughly flat
//!   in the shard count; parallel speedup needs parallel hardware.
//! * **closed loop** (scaling): a bounded number of outstanding transactions
//!   per shard, kept below the batch size so every round waits out the
//!   batcher's flush timer. Per-shard throughput is latency-bound — the
//!   group-commit regime — so aggregate committed-tx/s scales with the
//!   shard count even on one core, because shards wait out their (real,
//!   sleeping) flush timers concurrently. The ≥2× 1→4-shard acceptance
//!   criterion is evaluated on this regime for the message-passing stack.
//!
//! `--json` replaces the table with one machine-readable JSON object.

use ratc_workload::{
    wallclock_experiment, wallclock_scaling_experiment, StackKind, WallclockResult,
};

const STACKS: [StackKind; 3] = [StackKind::Core, StackKind::Rdma, StackKind::Baseline];
const SHARD_COUNTS: [u32; 3] = [1, 2, 4];
const SEED: u64 = 42;
/// Open-loop transactions per run.
const OPEN_TXS: usize = 2_000;
/// Closed-loop outstanding transactions per shard (below every batch size,
/// so each round exercises the partial-batch flush timer).
const OUTSTANDING: usize = 8;
/// Closed-loop rounds per run.
const WAVES: usize = 150;
/// Batch size of the batched configurations.
const BATCH: usize = 32;

fn main() {
    let json = std::env::args().any(|arg| arg == "--json");
    if !json {
        ratc_bench::header(
            "E9",
            "wall-clock throughput (threaded backend)",
            "the protocols are transport-agnostic message handlers; on real \
             threads they decide at hardware speed and shards scale \
             independently",
        );
    }

    let mut open: Vec<WallclockResult> = Vec::new();
    for stack in STACKS {
        for shards in SHARD_COUNTS {
            for batch in [1usize, BATCH] {
                open.push(wallclock_experiment(stack, shards, batch, OPEN_TXS, SEED));
            }
        }
    }
    let mut closed: Vec<WallclockResult> = Vec::new();
    for stack in STACKS {
        for shards in SHARD_COUNTS {
            closed.push(wallclock_scaling_experiment(
                stack,
                shards,
                OUTSTANDING,
                WAVES,
                BATCH,
                SEED,
            ));
        }
    }

    let rate = |results: &[WallclockResult], stack: StackKind, shards: u32| {
        results
            .iter()
            .find(|r| r.stack == stack && r.shards == shards)
            .map(|r| r.committed_per_sec)
            .unwrap_or(0.0)
    };
    let one = rate(&closed, StackKind::Core, 1);
    let four = rate(&closed, StackKind::Core, 4);
    let speedup = if one > 0.0 { four / one } else { 0.0 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if json {
        let open_rows: Vec<String> = open.iter().map(ratc_bench::json::wallclock).collect();
        let closed_rows: Vec<String> = closed.iter().map(ratc_bench::json::wallclock).collect();
        println!(
            r#"{{"experiment":"wallclock","backend":"threads","host_parallelism":{},"open_loop":{},"closed_loop":{},"scaling":{{"stack":"{}","closed_loop_tx_s_1_shard":{},"closed_loop_tx_s_4_shards":{},"speedup_1_to_4":{}}}}}"#,
            cores,
            ratc_bench::json::array(&open_rows),
            ratc_bench::json::array(&closed_rows),
            StackKind::Core,
            one,
            four,
            speedup
        );
        return;
    }

    println!("host parallelism: {cores}");
    println!("\nopen loop (capacity: all {OPEN_TXS} transactions queued up front)");
    for result in &open {
        println!("  {result}");
    }
    println!(
        "\nclosed loop (scaling: {OUTSTANDING} outstanding per shard x {WAVES} rounds, batch {BATCH})"
    );
    for result in &closed {
        println!("  {result}");
    }
    println!(
        "\nscaling ({}, closed loop): 1 shard = {:.0} tx/s, 4 shards = {:.0} tx/s, speedup = {:.2}x",
        StackKind::Core,
        one,
        four,
        speedup
    );
}
