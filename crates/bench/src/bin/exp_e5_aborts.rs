//! E5: abort rate under contention, message-passing vs RDMA data path.

use ratc_workload::{abort_rate_experiment, KeyDistribution, StackKind};

fn main() {
    ratc_bench::header(
        "E5",
        "abort rate vs contention",
        "g_s aborts transactions conflicting with prepared-but-undecided ones; the \
         faster the prepared window closes (RDMA), the lower the abort rate (§2, §5)",
    );
    for distribution in [
        KeyDistribution::Uniform,
        KeyDistribution::Zipfian { theta: 0.9 },
        KeyDistribution::Zipfian { theta: 1.2 },
        KeyDistribution::Hotspot { hot_keys: 4 },
    ] {
        for stack in [StackKind::Core, StackKind::Rdma] {
            println!("{}", abort_rate_experiment(stack, distribution, 300, 42));
        }
        println!();
    }
}
