//! E8 (batching): leader message amortisation of the batched certification
//! pipeline.

use ratc_workload::{batching_experiment, StackKind};

fn main() {
    ratc_bench::header(
        "E8",
        "batched certification pipeline",
        "coalescing PREPARE/ACCEPT/DECISION rounds across transactions divides the \
         shard leader's per-transaction message load by the batch size while every \
         per-transaction vote and decision stays individually correct",
    );
    for batch in [1usize, 2, 4, 8, 16, 32] {
        for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
            println!("{}", batching_experiment(stack, 512, batch, 42));
        }
        println!();
    }
}
