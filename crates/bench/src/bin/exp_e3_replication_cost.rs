//! E3: replication cost (replicas per shard) as a function of tolerated failures.

use ratc_workload::replication_cost_experiment;

fn main() {
    ratc_bench::header(
        "E3",
        "replication cost",
        "RATC needs f+1 replicas per shard; Paxos-based designs need 2f+1 (§1)",
    );
    for f in 1..=3 {
        println!("{}", replication_cost_experiment(f));
    }
}
