//! E9 (availability): commit throughput and recovery time vs. fault
//! intensity, for all three stacks under the chaos nemesis.

use ratc_chaos::{availability_experiment, Stack};

fn main() {
    ratc_bench::header(
        "E9",
        "availability under randomized fault injection",
        "a seed-driven nemesis crashes and restarts leaders, followers and \
         coordinators, partitions shards and triggers mid-flight reconfigurations \
         under drop/duplicate/delay noise; throughput degrades gracefully with \
         fault intensity, every run stays safe, and all submitted transactions \
         are decided once faults lift",
    );
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        for intensity in [0u8, 20, 40, 60, 80] {
            println!("{}", availability_experiment(stack, intensity, 42));
        }
        println!();
    }
}
