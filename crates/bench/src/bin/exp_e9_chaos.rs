//! E9 (availability): commit throughput and recovery time vs. fault
//! intensity, for all three stacks under the chaos nemesis. Rows carry the
//! blackout fields (availability windows, time-to-recover) derived from the
//! control-plane observability stream, plus per-message-type delivery
//! counts per decided transaction.
//!
//! `--json` replaces the table with one machine-readable JSON object.

use ratc_chaos::{availability_experiment, AvailabilityResult, Stack};

const STACKS: [Stack; 3] = [Stack::Core, Stack::Rdma, Stack::Baseline];
const INTENSITIES: [u8; 5] = [0, 20, 40, 60, 80];
const SEED: u64 = 42;

fn main() {
    let json = std::env::args().any(|arg| arg == "--json");
    if !json {
        ratc_bench::header(
            "E9",
            "availability under randomized fault injection",
            "a seed-driven nemesis crashes and restarts leaders, followers and \
             coordinators, partitions shards and triggers mid-flight reconfigurations \
             under drop/duplicate/delay noise; throughput degrades gracefully with \
             fault intensity, every run stays safe, and all submitted transactions \
             are decided once faults lift",
        );
    }
    let mut rows: Vec<AvailabilityResult> = Vec::new();
    for stack in STACKS {
        for intensity in INTENSITIES {
            let result = availability_experiment(stack, intensity, SEED);
            if !json {
                println!("{result}");
            }
            rows.push(result);
        }
        if !json {
            println!();
        }
    }
    if json {
        let row_objs: Vec<String> = rows.iter().map(ratc_bench::json::availability).collect();
        println!(
            r#"{{"experiment":"availability","shards":2,"seed":{},"intensities":{:?},"rows":{}}}"#,
            SEED,
            INTENSITIES,
            ratc_bench::json::array(&row_objs),
        );
    }
}
