//! E7: the Figure 4a counter-example — naive per-shard reconfiguration with an
//! RDMA data path violates safety; the correct global reconfiguration does not.

use ratc_rdma::ReconfigMode;
use ratc_workload::run_counterexample;

fn main() {
    ratc_bench::header(
        "E7",
        "Figure 4a counter-example",
        "per-shard reconfiguration combined with RDMA allows two contradictory \
         decisions to be externalised; the protocol of §5 excludes this",
    );
    for mode in [ReconfigMode::NaivePerShard, ReconfigMode::GlobalCorrect] {
        println!("{}", run_counterexample(mode, 1));
    }
}
