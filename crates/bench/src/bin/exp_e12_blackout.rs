//! E12 (blackout): the time-to-recover matrix — per-shard availability
//! windows under four canonical degradations (leader crash, per-shard
//! reconfiguration, global reconfiguration, partition + heal), for all three
//! stacks, derived from the control-plane observability stream
//! (committed as `BENCH_9.json`).
//!
//! Every window is bracketed by control-plane events: it opens at a
//! degrading milestone (`crash`, `fault-injected`, `reconfig-initiated`) and
//! closes at the first transaction decided on the shard afterwards, so the
//! matrix measures exactly how long each protocol leaves a shard unable to
//! decide.
//!
//! * `--json` replaces the table with one machine-readable JSON object,
//!   including a Chrome-trace-event rendering of the first cell's merged
//!   event log (loadable in `chrome://tracing` / Perfetto).
//! * `--trace` prints only that Chrome trace document.

use ratc_chaos::{blackout_experiment, BlackoutResult, BlackoutScenario, Stack};
use ratc_sim::{Blackout, CtrlEvent};

const STACKS: [Stack; 3] = [Stack::Core, Stack::Rdma, Stack::Baseline];
const SEED: u64 = 42;

fn main() {
    let json = std::env::args().any(|arg| arg == "--json");
    let trace_only = std::env::args().any(|arg| arg == "--trace");
    if !json && !trace_only {
        ratc_bench::header(
            "E12",
            "per-shard availability windows (blackouts) and time-to-recover",
            "reconfiguration bounds the time a shard stays unable to decide \
             after a failure; the control-plane event stream brackets every \
             window between the degrading milestone that opened it and the \
             first post-fault decision that closed it",
        );
    }

    let mut rows: Vec<BlackoutResult> = Vec::new();
    // The first cell's raw stream, kept for the Chrome-trace export.
    let mut exemplar: Option<(Vec<CtrlEvent>, Vec<Blackout>)> = None;
    for stack in STACKS {
        for scenario in BlackoutScenario::ALL {
            let (result, ctrl, blackouts) = blackout_experiment(stack, scenario, SEED);
            if exemplar.is_none() {
                exemplar = Some((ctrl, blackouts));
            }
            if !json && !trace_only {
                println!("{result}");
            }
            rows.push(result);
        }
        if !json && !trace_only {
            println!();
        }
    }

    let (ctrl, blackouts) = exemplar.expect("at least one cell ran");
    let trace = ratc_bench::json::chrome_trace(&ctrl, &blackouts);
    if trace_only {
        println!("{trace}");
        return;
    }
    if json {
        let row_objs: Vec<String> = rows.iter().map(ratc_bench::json::blackout).collect();
        println!(
            r#"{{"experiment":"blackout","shards":2,"seed":{},"scenarios":["leader-crash","shard-reconfig","global-reconfig","partition-heal"],"rows":{},"trace":{}}}"#,
            SEED,
            ratc_bench::json::array(&row_objs),
            trace
        );
    }
}
