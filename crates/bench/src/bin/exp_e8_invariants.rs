//! E8: randomized adversarial runs checked against the protocol invariants and
//! the TCS specification.

use ratc_workload::invariants_experiment;

fn main() {
    ratc_bench::header(
        "E8",
        "randomized invariant checking",
        "Invariants 1-5 (Figure 3) and the TCS specification hold on every execution, \
         including runs that lose undecided transactions to reconfiguration (§3, §4)",
    );
    println!("{}", invariants_experiment(50, 30, 1_000));
}
