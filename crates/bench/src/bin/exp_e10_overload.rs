//! E10: open-loop overload sweep on the threaded backend — goodput under
//! increasing offered load, with and without the cluster-wide flow-control
//! layer (admission windows + exponential retry backoff).
//!
//! The configuration is the one whose retry storm previously collapsed the
//! 2PC-over-Paxos baseline (`BENCH_6.json`: unbatched, open loop, depth
//! 2000 → 1424 transactions never decided): every transaction is submitted
//! up front and batching is disabled, so the coordinator's retry path
//! carries the whole burst. With flow control on, goodput past saturation
//! must *plateau* — the admission window keeps the in-flight set bounded
//! and backoff keeps retries sub-critical — instead of collapsing toward
//! zero.
//!
//! `--json` replaces the table with one machine-readable JSON object.

use ratc_workload::{
    overload_experiment, overload_sweep, FlowControlConfig, OverloadResult, StackKind,
};

const STACKS: [StackKind; 3] = [StackKind::Core, StackKind::Rdma, StackKind::Baseline];
/// Offered-load depths swept per stack: the shallow half sits below and
/// around the admission window (64), so the sweep crosses the saturation
/// knee instead of starting past it; the largest is the `BENCH_6.json`
/// collapse configuration.
const DEPTHS: [usize; 7] = [32, 64, 125, 250, 500, 1000, 2000];
const SHARDS: u32 = 1;
const SEED: u64 = 42;
/// Runs per flow-on point, keeping the best. The measured windows are a few
/// milliseconds of wall clock, so a single descheduling event can halve a
/// point; best-of-N approximates the uninterfered drain rate.
const RUNS: u64 = 3;

/// Best-of-[`RUNS`] goodput for one (stack, depth) point.
fn best_of(stack: StackKind, flow: FlowControlConfig, depth: usize) -> OverloadResult {
    (0..RUNS)
        .map(|i| overload_experiment(stack, SHARDS, flow, depth, SEED + i))
        .max_by(|a, b| {
            a.goodput_per_sec
                .partial_cmp(&b.goodput_per_sec)
                .expect("no NaN goodput")
        })
        .expect("RUNS > 0")
}

/// Plateau summary of one stack's sweep.
struct Plateau {
    /// Maximum goodput across the curve.
    peak: f64,
    /// Saturation point: the smallest swept depth whose goodput reaches 90%
    /// of peak — the knee where adding offered load stops adding goodput.
    saturation_depth: usize,
    /// The swept depth closest to 2× the saturation point.
    depth_2x: usize,
    /// Goodput at `depth_2x` as a fraction of peak — the acceptance number:
    /// past saturation the curve must stay on a plateau (≥ 0.80), not fall
    /// off a cliff.
    at_2x_over_peak: f64,
    /// Goodput at the deepest (most overloaded) point as a fraction of peak.
    tail_over_peak: f64,
}

fn plateau(results: &[OverloadResult]) -> Plateau {
    let peak = results
        .iter()
        .map(|r| r.goodput_per_sec)
        .fold(0.0, f64::max);
    let frac = |goodput: f64| if peak > 0.0 { goodput / peak } else { 0.0 };
    let saturation_depth = results
        .iter()
        .find(|r| frac(r.goodput_per_sec) >= 0.90)
        .map(|r| r.depth)
        .unwrap_or(DEPTHS[0]);
    let at_2x = results
        .iter()
        .min_by_key(|r| r.depth.abs_diff(2 * saturation_depth))
        .expect("non-empty sweep");
    let tail = results.last().expect("non-empty sweep");
    Plateau {
        peak,
        saturation_depth,
        depth_2x: at_2x.depth,
        at_2x_over_peak: frac(at_2x.goodput_per_sec),
        tail_over_peak: frac(tail.goodput_per_sec),
    }
}

fn main() {
    let json = std::env::args().any(|arg| arg == "--json");
    if !json {
        ratc_bench::header(
            "E10",
            "open-loop overload sweep (threaded backend)",
            "admission control and retry backoff keep goodput at a plateau \
             past saturation instead of collapsing under the retry storm",
        );
    }

    let mut flow_on: Vec<OverloadResult> = Vec::new();
    for stack in STACKS {
        for depth in DEPTHS {
            flow_on.push(best_of(stack, FlowControlConfig::default(), depth));
        }
    }
    // The before picture, kept measurable: the legacy immediate-retry
    // behaviour on the configuration that used to collapse. Only the
    // deepest point — the whole sweep would waste minutes timing out.
    let legacy: Vec<OverloadResult> = overload_sweep(
        StackKind::Baseline,
        SHARDS,
        FlowControlConfig::legacy(),
        &DEPTHS[DEPTHS.len() - 1..],
        SEED,
    );

    if json {
        let on_rows: Vec<String> = flow_on.iter().map(ratc_bench::json::overload).collect();
        let legacy_rows: Vec<String> = legacy.iter().map(ratc_bench::json::overload).collect();
        let plateaus: Vec<String> = STACKS
            .iter()
            .map(|stack| {
                let rows: Vec<OverloadResult> = flow_on
                    .iter()
                    .filter(|r| r.stack == *stack)
                    .cloned()
                    .collect();
                let p = plateau(&rows);
                format!(
                    r#"{{"stack":"{}","peak_goodput_per_sec":{},"saturation_depth":{},"depth_2x_saturation":{},"goodput_2x_over_peak":{},"tail_over_peak":{}}}"#,
                    stack, p.peak, p.saturation_depth, p.depth_2x, p.at_2x_over_peak, p.tail_over_peak
                )
            })
            .collect();
        println!(
            r#"{{"experiment":"overload","backend":"threads","shards":{},"depths":{:?},"flow_on":{},"legacy_baseline":{},"plateaus":{}}}"#,
            SHARDS,
            DEPTHS,
            ratc_bench::json::array(&on_rows),
            ratc_bench::json::array(&legacy_rows),
            ratc_bench::json::array(&plateaus),
        );
        return;
    }

    println!("flow control ON (admission window 64, exponential backoff)");
    for result in &flow_on {
        println!("  {result}");
    }
    println!("\nlegacy immediate-retry baseline (the BENCH_6 collapse config)");
    for result in &legacy {
        println!("  {result}");
    }
    println!();
    for stack in STACKS {
        let rows: Vec<OverloadResult> = flow_on
            .iter()
            .filter(|r| r.stack == stack)
            .cloned()
            .collect();
        let p = plateau(&rows);
        println!(
            "{stack}: peak = {:.0} tx/s, saturates at depth {}, at 2x saturation \
             (depth {}) = {:.0}% of peak, at depth {} = {:.0}% of peak",
            p.peak,
            p.saturation_depth,
            p.depth_2x,
            100.0 * p.at_2x_over_peak,
            DEPTHS[DEPTHS.len() - 1],
            100.0 * p.tail_over_peak
        );
    }
}
