//! Facade smoke: one generic experiment per stack through the unified
//! `TcsCluster` API — the experiment × stack matrix the `ratc-harness`
//! facade opened up. Runs E1 (latency), E7 (log retention) and E8 (batching
//! amortisation) on the message-passing, RDMA and 2PC-over-Paxos stacks
//! from the same generic drivers; CI runs this binary as the unified-API
//! smoke job.
//!
//! `--json` replaces the table with one machine-readable JSON object (the
//! format committed in `BENCH_*.json`).

use ratc_workload::{batching_experiment, latency_experiment, truncation_experiment, StackKind};

fn main() {
    let json = std::env::args().any(|arg| arg == "--json");
    let stacks = [StackKind::Core, StackKind::Rdma, StackKind::Baseline];
    let latency: Vec<_> = stacks
        .iter()
        .map(|&stack| latency_experiment(stack, 2, 30, 42))
        .collect();
    let truncation: Vec<_> = stacks
        .iter()
        .map(|&stack| truncation_experiment(stack, 2, 64, Some(8), 42))
        .collect();
    let batching: Vec<_> = stacks
        .iter()
        .flat_map(|&stack| [1usize, 8].map(|batch| batching_experiment(stack, 64, batch, 42)))
        .collect();

    if json {
        let latency_rows: Vec<String> = latency.iter().map(ratc_bench::json::latency).collect();
        let truncation_rows: Vec<String> = truncation
            .iter()
            .map(ratc_bench::json::truncation)
            .collect();
        let batching_rows: Vec<String> = batching.iter().map(ratc_bench::json::batching).collect();
        println!(
            r#"{{"experiment":"matrix","latency":{},"truncation":{},"batching":{}}}"#,
            ratc_bench::json::array(&latency_rows),
            ratc_bench::json::array(&truncation_rows),
            ratc_bench::json::array(&batching_rows)
        );
        return;
    }

    ratc_bench::header(
        "MATRIX",
        "experiment x stack matrix through the unified facade",
        "one TCS abstraction admits interchangeable implementations; every \
         experiment runs on every stack from one generic code path",
    );
    println!("E1: decision latency");
    for result in &latency {
        println!("  {result}");
    }
    println!("\nE7: bounded log retention");
    for result in &truncation {
        println!("  {result}");
    }
    println!("\nE8: batching amortisation");
    for result in &batching {
        println!("  {result}");
    }
}
