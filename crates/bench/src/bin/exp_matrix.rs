//! Facade smoke: one generic experiment per stack through the unified
//! `TcsCluster` API — the experiment × stack matrix the `ratc-harness`
//! facade opened up. Runs E1 (latency), E7 (log retention) and E8 (batching
//! amortisation) on the message-passing, RDMA and 2PC-over-Paxos stacks
//! from the same generic drivers; CI runs this binary as the unified-API
//! smoke job.

use ratc_workload::{batching_experiment, latency_experiment, truncation_experiment, StackKind};

fn main() {
    ratc_bench::header(
        "MATRIX",
        "experiment x stack matrix through the unified facade",
        "one TCS abstraction admits interchangeable implementations; every \
         experiment runs on every stack from one generic code path",
    );
    let stacks = [StackKind::Core, StackKind::Rdma, StackKind::Baseline];
    println!("E1: decision latency");
    for stack in stacks {
        println!("  {}", latency_experiment(stack, 2, 30, 42));
    }
    println!("\nE7: bounded log retention");
    for stack in stacks {
        println!("  {}", truncation_experiment(stack, 2, 64, Some(8), 42));
    }
    println!("\nE8: batching amortisation");
    for stack in stacks {
        for batch in [1usize, 8] {
            println!("  {}", batching_experiment(stack, 64, batch, 42));
        }
    }
}
