//! E2: messages handled by shard leaders per transaction.

use ratc_workload::{leader_load_experiment, StackKind};

fn main() {
    ratc_bench::header(
        "E2",
        "leader load",
        "each RATC leader only receives one PREPARE and one DECISION and sends one \
         PREPARE_ACK per transaction; Paxos leaders in the baseline handle far more (§3)",
    );
    for stack in [StackKind::Core, StackKind::Baseline] {
        println!("{}", leader_load_experiment(stack, 4, 500, 42));
    }
}
