//! E6: availability after a replica failure — f+1 with reconfiguration vs
//! 2f+1 with failure masking.

use ratc_workload::{reconfiguration_experiment, StackKind};

fn main() {
    ratc_bench::header(
        "E6",
        "reconfiguration and availability",
        "with f+1 replicas a single failure blocks the shard until reconfiguration \
         completes; with 2f+1 the baseline masks it (§1, §6, Theorems 4.2-4.4)",
    );
    for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
        for seed in [1u64, 2, 3] {
            println!("{}", reconfiguration_experiment(stack, seed));
        }
    }
}
