//! Property-based tests over the whole stack.
//!
//! Strategies generate random workloads (payloads, contention levels, seeds)
//! and random fault schedules; properties assert the paper's correctness
//! conditions: certification-function laws (§2), the TCS specification over
//! client histories, and the protocol invariants of Figure 3.

use proptest::prelude::*;
use ratc::core::harness::{Cluster, ClusterConfig};
use ratc::core::invariants::check_cluster;
use ratc::spec::check_history;
use ratc::types::certify::properties as certify_props;
use ratc::types::prelude::*;

fn arb_payload() -> impl Strategy<Value = Payload> {
    // Keys from a small universe so that conflicts actually happen.
    let key = (0u32..8).prop_map(|i| Key::new(format!("k{i}")));
    let read = (key.clone(), 0u64..4).prop_map(|(k, v)| (k, Version::new(v)));
    let write = key.prop_map(|k| (k, Value::from("w")));
    (
        proptest::collection::vec(read, 1..4),
        proptest::collection::vec(write, 0..3),
        4u64..20,
    )
        .prop_map(|(reads, writes, commit)| {
            let mut builder = Payload::builder();
            for (k, v) in reads {
                builder = builder.read(k, v);
            }
            for (k, v) in &writes {
                // Written keys must also be read.
                builder = builder.read(k.clone(), Version::ZERO);
                builder = builder.write(k.clone(), v.clone());
            }
            builder.commit_version(Version::new(commit)).build_unchecked()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distributivity (1) of the global certification function and both
    /// shard-local functions, for both provided policies.
    #[test]
    fn certification_functions_are_distributive(
        left in proptest::collection::vec(arb_payload(), 0..4),
        right in proptest::collection::vec(arb_payload(), 0..4),
        candidate in arb_payload(),
    ) {
        let left_refs: Vec<&Payload> = left.iter().collect();
        let right_refs: Vec<&Payload> = right.iter().collect();
        for policy in [&Serializability::new() as &dyn CertificationPolicy, &WriteConflict::new()] {
            prop_assert!(certify_props::distributive_global(policy, &left_refs, &right_refs, &candidate));
            let certifier = policy.shard_certifier(ShardId::new(0));
            prop_assert!(certify_props::distributive_shard_committed(&*certifier, &left_refs, &right_refs, &candidate));
            prop_assert!(certify_props::distributive_shard_prepared(&*certifier, &left_refs, &right_refs, &candidate));
        }
    }

    /// Matching (3) between the global function and the shard-local functions,
    /// plus properties (4) and (5), for both policies.
    #[test]
    fn shard_local_functions_match_the_global_function(
        committed in proptest::collection::vec(arb_payload(), 0..5),
        pending in arb_payload(),
        candidate in arb_payload(),
    ) {
        let committed_refs: Vec<&Payload> = committed.iter().collect();
        let sharding = HashSharding::new(3);
        for policy in [&Serializability::new() as &dyn CertificationPolicy, &WriteConflict::new()] {
            prop_assert!(certify_props::matching(policy, &sharding, &committed_refs, &candidate));
            let certifier = policy.shard_certifier(ShardId::new(0));
            prop_assert!(certify_props::prepared_no_weaker(&*certifier, &committed_refs, &candidate));
            prop_assert!(certify_props::commutation(&*certifier, &pending, &candidate));
            prop_assert!(certify_props::empty_payload_commits(&*certifier, &committed_refs));
        }
    }

    /// The empty payload always certifies to commit.
    #[test]
    fn empty_payload_always_commits(committed in proptest::collection::vec(arb_payload(), 0..6)) {
        let refs: Vec<&Payload> = committed.iter().collect();
        prop_assert_eq!(Serializability::new().certify(&refs, &Payload::empty()), Decision::Commit);
        prop_assert_eq!(WriteConflict::new().certify(&refs, &Payload::empty()), Decision::Commit);
    }
}

proptest! {
    // End-to-end simulations are heavier; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized failure-free runs of the message-passing protocol satisfy
    /// the TCS specification and the protocol invariants, and decide every
    /// transaction.
    #[test]
    fn random_workloads_satisfy_the_specification(
        seed in 0u64..1_000,
        payloads in proptest::collection::vec(arb_payload(), 1..25),
        shards in 1u32..4,
    ) {
        let mut cluster = Cluster::new(ClusterConfig::default().with_shards(shards).with_seed(seed));
        for (i, payload) in payloads.iter().enumerate() {
            cluster.submit(TxId::new(i as u64 + 1), payload.clone());
        }
        cluster.run_to_quiescence();
        let history = cluster.history();
        prop_assert_eq!(history.decide_count(), payloads.len());
        prop_assert!(cluster.client_violations().is_empty());
        prop_assert!(check_history(&history, &Serializability::new()).is_empty());
        prop_assert!(check_cluster(&cluster).is_empty());
    }

    /// Randomized runs with a crash and reconfiguration at a random point
    /// still satisfy the specification and the invariants, and transactions
    /// submitted after recovery are all decided.
    #[test]
    fn random_crash_and_reconfiguration_preserve_safety(
        seed in 0u64..1_000,
        payloads in proptest::collection::vec(arb_payload(), 2..15),
        crash_leader in proptest::bool::ANY,
    ) {
        let mut cluster = Cluster::new(ClusterConfig::default().with_shards(2).with_seed(seed));
        let half = payloads.len() / 2;
        for (i, payload) in payloads[..half].iter().enumerate() {
            cluster.submit(TxId::new(i as u64 + 1), payload.clone());
        }
        cluster.run_to_quiescence();

        let shard = ShardId::new((seed % 2) as u32);
        let leader = cluster.current_leader(shard);
        let follower = *cluster
            .current_members(shard)
            .iter()
            .find(|p| **p != leader)
            .expect("follower");
        let (victim, initiator) = if crash_leader { (leader, follower) } else { (follower, leader) };
        cluster.crash(victim);
        cluster.start_reconfiguration(shard, initiator, vec![victim]);
        cluster.run_to_quiescence();

        for (i, payload) in payloads[half..].iter().enumerate() {
            cluster.submit(TxId::new((half + i) as u64 + 1), payload.clone());
        }
        cluster.run_to_quiescence();

        let history = cluster.history();
        prop_assert!(cluster.client_violations().is_empty());
        prop_assert!(check_history(&history, &Serializability::new()).is_empty());
        prop_assert!(check_cluster(&cluster).is_empty());
        // Everything submitted after the reconfiguration completed is decided.
        for i in half..payloads.len() {
            prop_assert!(history.decision(TxId::new(i as u64 + 1)).is_some());
        }
    }
}
