//! Property-based tests over the whole stack.
//!
//! Deterministic generators (seeded with the workspace's `ChaCha12Rng`
//! stand-in) produce random workloads — payloads, contention levels, seeds —
//! and random fault schedules; properties assert the paper's correctness
//! conditions: certification-function laws (§2), the TCS specification over
//! client histories, the protocol invariants of Figure 3, and vote-for-vote
//! agreement of the incremental certification index with the set-based
//! reference functions.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use ratc::core::harness::{Cluster, ClusterConfig};
use ratc::core::invariants::check_cluster;
use ratc::spec::check_history;
use ratc::types::certify::properties as certify_props;
use ratc::types::prelude::*;

/// Random payload over a small key universe so that conflicts actually
/// happen: 1–3 reads, 0–2 writes (each written key is also read).
fn arb_payload(rng: &mut ChaCha12Rng) -> Payload {
    let mut builder = Payload::builder();
    let reads = rng.gen_range(1..4usize);
    let mut read_keys = Vec::new();
    for _ in 0..reads {
        let key = Key::new(format!("k{}", rng.gen_range(0..8u32)));
        builder = builder.read(key.clone(), Version::new(rng.gen_range(0..4u64)));
        read_keys.push(key);
    }
    let writes = rng.gen_range(0..3usize).min(read_keys.len());
    for key in read_keys.into_iter().take(writes) {
        // Written keys must also be read; re-read at version zero like the
        // original proptest strategy did.
        builder = builder.read(key.clone(), Version::ZERO);
        builder = builder.write(key, Value::from("w"));
    }
    builder
        .commit_version(Version::new(rng.gen_range(4..20u64)))
        .build_unchecked()
}

fn arb_payload_vec(rng: &mut ChaCha12Rng, min: usize, max: usize) -> Vec<Payload> {
    let len = rng.gen_range(min..max);
    (0..len).map(|_| arb_payload(rng)).collect()
}

/// Distributivity (1) of the global certification function and both
/// shard-local functions, for both provided policies.
#[test]
fn certification_functions_are_distributive() {
    let mut rng = ChaCha12Rng::seed_from_u64(0xD15);
    for _ in 0..64 {
        let left = arb_payload_vec(&mut rng, 0, 4);
        let right = arb_payload_vec(&mut rng, 0, 4);
        let candidate = arb_payload(&mut rng);
        let left_refs: Vec<&Payload> = left.iter().collect();
        let right_refs: Vec<&Payload> = right.iter().collect();
        for policy in [
            &Serializability::new() as &dyn CertificationPolicy,
            &WriteConflict::new(),
        ] {
            assert!(certify_props::distributive_global(
                policy,
                &left_refs,
                &right_refs,
                &candidate
            ));
            let certifier = policy.shard_certifier(ShardId::new(0));
            assert!(certify_props::distributive_shard_committed(
                &*certifier,
                &left_refs,
                &right_refs,
                &candidate
            ));
            assert!(certify_props::distributive_shard_prepared(
                &*certifier,
                &left_refs,
                &right_refs,
                &candidate
            ));
        }
    }
}

/// Matching (3) between the global function and the shard-local functions,
/// plus properties (4) and (5), for both policies.
#[test]
fn shard_local_functions_match_the_global_function() {
    let mut rng = ChaCha12Rng::seed_from_u64(0x3A7C);
    for _ in 0..64 {
        let committed = arb_payload_vec(&mut rng, 0, 5);
        let pending = arb_payload(&mut rng);
        let candidate = arb_payload(&mut rng);
        let committed_refs: Vec<&Payload> = committed.iter().collect();
        let sharding = HashSharding::new(3);
        for policy in [
            &Serializability::new() as &dyn CertificationPolicy,
            &WriteConflict::new(),
        ] {
            assert!(certify_props::matching(
                policy,
                &sharding,
                &committed_refs,
                &candidate
            ));
            let certifier = policy.shard_certifier(ShardId::new(0));
            assert!(certify_props::prepared_no_weaker(
                &*certifier,
                &committed_refs,
                &candidate
            ));
            assert!(certify_props::commutation(
                &*certifier,
                &pending,
                &candidate
            ));
            assert!(certify_props::empty_payload_commits(
                &*certifier,
                &committed_refs
            ));
        }
    }
}

/// The empty payload always certifies to commit.
#[test]
fn empty_payload_always_commits() {
    let mut rng = ChaCha12Rng::seed_from_u64(0xE9);
    for _ in 0..64 {
        let committed = arb_payload_vec(&mut rng, 0, 6);
        let refs: Vec<&Payload> = committed.iter().collect();
        assert_eq!(
            Serializability::new().certify(&refs, &Payload::empty()),
            Decision::Commit
        );
        assert_eq!(
            WriteConflict::new().certify(&refs, &Payload::empty()),
            Decision::Commit
        );
    }
}

/// Randomized failure-free runs of the message-passing protocol satisfy the
/// TCS specification and the protocol invariants, and decide every
/// transaction.
#[test]
fn random_workloads_satisfy_the_specification() {
    let mut rng = ChaCha12Rng::seed_from_u64(0x5EED);
    for _ in 0..12 {
        let seed = rng.gen_range(0..1_000u64);
        let payloads = arb_payload_vec(&mut rng, 1, 25);
        let shards = rng.gen_range(1..4u32);
        let mut cluster =
            Cluster::new(ClusterConfig::default().with_shards(shards).with_seed(seed));
        for (i, payload) in payloads.iter().enumerate() {
            cluster.submit(TxId::new(i as u64 + 1), payload.clone());
        }
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert_eq!(history.decide_count(), payloads.len());
        assert!(cluster.client_violations().is_empty());
        assert!(check_history(&history, &Serializability::new()).is_empty());
        assert!(check_cluster(&cluster).is_empty());
    }
}

/// Randomized runs with a crash and reconfiguration at a random point still
/// satisfy the specification and the invariants, and transactions submitted
/// after recovery are all decided.
#[test]
fn random_crash_and_reconfiguration_preserve_safety() {
    let mut rng = ChaCha12Rng::seed_from_u64(0xC4A5);
    for _ in 0..12 {
        let seed = rng.gen_range(0..1_000u64);
        let payloads = arb_payload_vec(&mut rng, 2, 15);
        let crash_leader = rng.gen_bool(0.5);
        let mut cluster = Cluster::new(ClusterConfig::default().with_shards(2).with_seed(seed));
        let half = payloads.len() / 2;
        for (i, payload) in payloads[..half].iter().enumerate() {
            cluster.submit(TxId::new(i as u64 + 1), payload.clone());
        }
        cluster.run_to_quiescence();

        let shard = ShardId::new((seed % 2) as u32);
        let leader = cluster.current_leader(shard);
        let follower = *cluster
            .current_members(shard)
            .iter()
            .find(|p| **p != leader)
            .expect("follower");
        let (victim, initiator) = if crash_leader {
            (leader, follower)
        } else {
            (follower, leader)
        };
        cluster.crash(victim);
        cluster.start_reconfiguration(shard, initiator, vec![victim]);
        cluster.run_to_quiescence();

        for (i, payload) in payloads[half..].iter().enumerate() {
            cluster.submit(TxId::new((half + i) as u64 + 1), payload.clone());
        }
        cluster.run_to_quiescence();

        let history = cluster.history();
        assert!(cluster.client_violations().is_empty());
        assert!(check_history(&history, &Serializability::new()).is_empty());
        assert!(check_cluster(&cluster).is_empty());
        // Everything submitted after the reconfiguration completed is decided.
        for i in half..payloads.len() {
            assert!(history.decision(TxId::new(i as u64 + 1)).is_some());
        }
    }
}

/// The incremental certification index agrees vote-for-vote with the
/// set-based reference functions on randomized certification schedules with
/// out-of-order decides and holes, for both policies.
#[test]
fn indexed_votes_agree_with_reference_on_random_schedules() {
    for policy in [
        &Serializability::new() as &dyn CertificationPolicy,
        &WriteConflict::new(),
    ] {
        for seed in 0..16 {
            let report = ratc::spec::differential_vote_check(policy, seed, 100)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(report.votes_checked > 0);
        }
    }
}
