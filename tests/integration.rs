//! Cross-crate integration tests: every TCS implementation is driven through
//! the key-value layer and checked against the black-box specification.

use ratc::core::harness::{Cluster, ClusterConfig};
use ratc::core::invariants::check_cluster;
use ratc::core::replica::TruncationConfig;
use ratc::harness::{ClusterSpec, StackKind};
use ratc::kv::KvStore;
use ratc::rdma::{RdmaCluster, RdmaClusterConfig};
use ratc::spec::{check_conflict_serializable, check_history};
use ratc::types::prelude::*;

fn transfer_payload(store: &KvStore, tx: TxId, from: &str, to: &str, amount: u64) -> Payload {
    let mut t = store.begin(tx);
    let read = |v: Option<Value>| {
        v.map(|v| {
            let mut b = [0u8; 8];
            b.copy_from_slice(v.as_bytes());
            u64::from_be_bytes(b)
        })
        .unwrap_or(0)
    };
    let from_balance = read(t.read(Key::new(from)));
    let to_balance = read(t.read(Key::new(to)));
    t.write(
        Key::new(from),
        Value::from(from_balance.saturating_sub(amount)),
    );
    t.write(Key::new(to), Value::from(to_balance + amount));
    t.into_payload().expect("well-formed payload")
}

#[test]
fn kv_store_over_ratc_mp_is_serializable_and_conserves_money() {
    let mut store = KvStore::new();
    for i in 0..6 {
        store.seed(Key::new(format!("acct-{i}")), Value::from(100u64));
    }
    let mut cluster = Cluster::new(ClusterConfig::default().with_shards(3).with_seed(21));
    for i in 0..30u64 {
        let tx = TxId::new(i + 1);
        let from = format!("acct-{}", i % 6);
        let to = format!("acct-{}", (i + 1) % 6);
        let payload = transfer_payload(&store, tx, &from, &to, 5);
        cluster.submit(tx, payload.clone());
        cluster.run_to_quiescence();
        if cluster.history().decision(tx) == Some(Decision::Commit) {
            store.apply_commit(tx, &payload);
        }
    }
    let history = cluster.history();
    assert!(history.is_complete());
    assert!(check_history(&history, &Serializability::new()).is_empty());
    assert!(check_conflict_serializable(&history).is_ok());
    assert!(check_cluster(&cluster).is_empty());

    let total: u64 = (0..6)
        .map(|i| {
            store
                .read_committed(&Key::new(format!("acct-{i}")))
                .map(|(_, v)| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(v.as_bytes());
                    u64::from_be_bytes(b)
                })
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(total, 600);
}

#[test]
fn all_three_protocols_agree_on_a_contended_workload() {
    // The same deterministic workload of 30 transactions over 5 hot keys is
    // run against every TCS implementation — through the unified facade, so
    // the driver is written exactly once. Exact decisions may differ (they
    // depend on message timing), but every history must satisfy the TCS
    // specification and conflicting transactions must never both commit.
    let payloads: Vec<(TxId, Payload)> = (0..30u64)
        .map(|i| {
            let key = format!("hot-{}", i % 5);
            (
                TxId::new(i + 1),
                Payload::builder()
                    .read(Key::new(&key), Version::ZERO)
                    .write(Key::new(&key), Value::from("x"))
                    .commit_version(Version::new(i + 1))
                    .build()
                    .expect("well-formed"),
            )
        })
        .collect();

    for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
        let mut cluster = ClusterSpec::new(stack).with_shards(2).with_seed(5).build();
        for (tx, p) in &payloads {
            cluster.submit(*tx, p.clone());
        }
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert!(
            check_history(&history, &Serializability::new()).is_empty(),
            "{stack}: specification violated"
        );
        assert_eq!(history.decide_count(), 30, "{stack}: lost decisions");
        assert!(cluster.client_violations().is_empty(), "{stack}");

        // At most one transaction per hot key can commit under
        // serializability when all of them read version 0.
        for hot in 0..5u64 {
            let committed_on_key = history
                .committed()
                .filter(|tx| (tx.as_u64() - 1) % 5 == hot)
                .count();
            assert!(
                committed_on_key <= 1,
                "{stack} key hot-{hot}: {committed_on_key} commits"
            );
        }
    }
}

#[test]
fn write_conflict_policy_commits_more_than_serializability() {
    use std::sync::Arc;
    // Read-only transactions against a written key abort under
    // serializability (stale reads) but commit under the write-conflict
    // policy, demonstrating the protocols' parametricity in the isolation
    // level.
    let payloads: Vec<(TxId, Payload)> = (0..20u64)
        .map(|i| {
            let mut b = Payload::builder().read(Key::new("shared"), Version::ZERO);
            if i % 2 == 0 {
                b = b
                    .write(Key::new("shared"), Value::from("w"))
                    .commit_version(Version::new(i + 1));
            }
            (TxId::new(i + 1), b.build().expect("well-formed"))
        })
        .collect();

    let run = |policy: Arc<dyn CertificationPolicy>| {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(2)
                .with_seed(9)
                .with_policy(policy),
        );
        for (tx, p) in &payloads {
            cluster.submit(*tx, p.clone());
        }
        cluster.run_to_quiescence();
        cluster.history().committed().count()
    };

    let serializable_commits = run(Arc::new(Serializability::new()));
    let write_conflict_commits = run(Arc::new(WriteConflict::new()));
    assert!(
        write_conflict_commits > serializable_commits,
        "write-conflict ({write_conflict_commits}) must admit more commits than serializability ({serializable_commits})"
    );
}

/// A mildly contended payload stream: distinct keys repeat every 8
/// transactions, with read versions chosen so that repeats conflict and
/// abort, exercising both outcomes in the truncated prefix.
fn contended_payload(i: u64) -> Payload {
    Payload::builder()
        .read(Key::new(format!("hot-{}", i % 8)), Version::ZERO)
        .write(Key::new(format!("hot-{}", i % 8)), Value::from("v"))
        .commit_version(Version::new(i + 1))
        .build()
        .expect("well-formed")
}

#[test]
fn crash_recovery_from_checkpoint_and_suffix_loses_no_decisions() {
    // Aggressive truncation so the prefix is folded well before the crash.
    let mut cluster = Cluster::new(
        ClusterConfig::default()
            .with_shards(2)
            .with_seed(41)
            .with_truncation(TruncationConfig::with_batch(4)),
    );
    for i in 0..40u64 {
        cluster.submit(TxId::new(i + 1), contended_payload(i));
        cluster.run_to_quiescence();
    }
    let shard = ShardId::new(0);
    let leader = cluster.current_leader(shard);
    assert!(
        cluster.replica(leader).log().base().as_u64() > 0,
        "the leader must have truncated before the crash"
    );

    // Kill a follower mid-history and recover through reconfiguration: the
    // spare is initialised from NEW_STATE carrying Checkpoint + suffix.
    let follower = *cluster
        .initial_members(shard)
        .iter()
        .find(|p| **p != leader)
        .expect("follower");
    cluster.crash(follower);
    cluster.start_reconfiguration(shard, leader, vec![follower]);
    cluster.run_to_quiescence();

    let new_members = cluster.current_members(shard);
    assert!(!new_members.contains(&follower));
    let recovered = *new_members
        .iter()
        .find(|p| !cluster.initial_members(shard).contains(p))
        .expect("a spare joined the configuration");
    let recovered_log = cluster.replica(recovered).log();
    assert!(
        recovered_log.base().as_u64() > 0,
        "state transfer must carry the checkpoint, not the whole log"
    );
    // Decisions folded before the crash are still answerable at the spare.
    let (tx, dec) = recovered_log
        .checkpoint()
        .decisions()
        .map(|(_, tx, dec)| (tx, dec))
        .next()
        .expect("checkpoint has folded decisions");
    assert_eq!(recovered_log.truncated_decision(tx), Some(dec));

    // Keep certifying after recovery.
    for i in 40..60u64 {
        cluster.submit(TxId::new(i + 1), contended_payload(i));
        cluster.run_to_quiescence();
    }

    // The merged history (before + after the crash) must satisfy the TCS
    // specification and stay conflict-serializable: no decision and no
    // conflict edge was lost to truncation.
    let history = cluster.history();
    assert_eq!(history.decide_count(), 60);
    assert!(check_history(&history, &Serializability::new()).is_empty());
    assert!(check_conflict_serializable(&history).is_ok());
    assert!(check_cluster(&cluster).is_empty());
    assert!(cluster.client_violations().is_empty());
}

#[test]
fn rdma_crash_recovery_with_truncation_preserves_the_specification() {
    let mut cluster = RdmaCluster::new(
        RdmaClusterConfig::default()
            .with_shards(2)
            .with_seed(23)
            .with_truncation(TruncationConfig::with_batch(4)),
    );
    for i in 0..30u64 {
        cluster.submit(TxId::new(i + 1), contended_payload(i));
        cluster.run_to_quiescence();
    }
    let shard = ShardId::new(0);
    let config = cluster.current_config();
    let leader = config.leader_of(shard).expect("leader");
    assert!(
        cluster.replica(leader).log().base().as_u64() > 0,
        "the RDMA leader must have truncated before the crash"
    );
    let follower = *config
        .members_of(shard)
        .iter()
        .find(|p| **p != leader)
        .expect("follower");
    cluster.crash(follower);
    cluster.start_reconfiguration(shard, leader, vec![follower]);
    cluster.run_to_quiescence();

    for i in 30..45u64 {
        cluster.submit(TxId::new(i + 1), contended_payload(i));
        cluster.run_to_quiescence();
    }
    let history = cluster.history();
    assert_eq!(history.decide_count(), 45);
    assert!(check_history(&history, &Serializability::new()).is_empty());
    assert!(check_conflict_serializable(&history).is_ok());
    assert!(cluster.client_violations().is_empty());
}

#[test]
fn reconfiguration_mid_stream_preserves_the_specification() {
    let mut cluster = Cluster::new(ClusterConfig::default().with_shards(2).with_seed(33));
    for i in 0..15u64 {
        cluster.submit(
            TxId::new(i + 1),
            Payload::builder()
                .read(Key::new(format!("k{}", i % 4)), Version::ZERO)
                .write(Key::new(format!("k{}", i % 4)), Value::from("v"))
                .commit_version(Version::new(i + 1))
                .build()
                .expect("well-formed"),
        );
    }
    // Crash a follower while the stream is in flight.
    let shard = ShardId::new(0);
    let leader = cluster.current_leader(shard);
    let follower = *cluster
        .initial_members(shard)
        .iter()
        .find(|p| **p != leader)
        .expect("follower");
    cluster.crash(follower);
    cluster.start_reconfiguration(shard, leader, vec![follower]);
    cluster.run_to_quiescence();

    for i in 15..25u64 {
        cluster.submit(
            TxId::new(i + 1),
            Payload::builder()
                .read(Key::new(format!("fresh-{i}")), Version::ZERO)
                .write(Key::new(format!("fresh-{i}")), Value::from("v"))
                .commit_version(Version::new(1))
                .build()
                .expect("well-formed"),
        );
    }
    cluster.run_to_quiescence();

    let history = cluster.history();
    assert!(check_history(&history, &Serializability::new()).is_empty());
    assert!(check_cluster(&cluster).is_empty());
    assert!(cluster.client_violations().is_empty());
    // Transactions submitted after recovery must all be decided.
    for i in 15..25u64 {
        assert!(
            history.decision(TxId::new(i + 1)).is_some(),
            "t{} undecided",
            i + 1
        );
    }
}
