//! RATC: Reconfigurable Atomic Transaction Commit.
//!
//! This facade crate re-exports the whole protocol stack of the workspace — a
//! from-scratch Rust reproduction of Bravo & Gotsman, *Reconfigurable Atomic
//! Transaction Commit* (PODC 2019):
//!
//! * [`types`] — payloads, decisions and certification policies;
//! * [`obs`] — commit-path observability: transaction lifecycle timelines
//!   and per-phase latency attribution;
//! * [`sim`] — the deterministic simulation substrate;
//! * [`config`] — the configuration service;
//! * [`paxos`] — the Multi-Paxos substrate used by the baseline;
//! * [`core`] — the message-passing RATC protocol (§3, Figure 1);
//! * [`rdma`] — the RDMA-based RATC protocol (§5, Figures 7–8);
//! * [`baseline`] — the vanilla 2PC-over-Paxos baseline;
//! * [`harness`] — the **unified cluster API**: the stack-agnostic
//!   [`TcsCluster`](harness::TcsCluster) trait and the
//!   [`ClusterSpec`](harness::ClusterSpec) builder that deploys any of the
//!   three stacks;
//! * [`spec`] — TCS specification checkers;
//! * [`kv`] — a transactional key-value store driving the TCS;
//! * [`workload`] — workload generators and experiment drivers;
//! * [`chaos`] — the chaos nemesis: randomized fault injection,
//!   crash-restart recovery and automatic schedule shrinking.
//!
//! See the runnable programs in `examples/` and the experiment binaries in
//! `crates/bench` for end-to-end usage, and DESIGN.md / EXPERIMENTS.md for the
//! reproduction methodology.
//!
//! # Quick start
//!
//! The unified facade runs the same code against any stack:
//!
//! ```
//! use ratc::harness::{ClusterSpec, StackKind};
//! use ratc::types::prelude::*;
//!
//! for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
//!     let mut cluster = ClusterSpec::new(stack).build();
//!     let payload = Payload::builder()
//!         .read(Key::new("x"), Version::new(0))
//!         .write(Key::new("x"), Value::from("1"))
//!         .commit_version(Version::new(1))
//!         .build()?;
//!     cluster.submit(TxId::new(1), payload);
//!     cluster.run_to_quiescence();
//!     assert_eq!(cluster.history().decision(TxId::new(1)), Some(Decision::Commit));
//! }
//! # Ok::<(), PayloadError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use ratc_baseline as baseline;
pub use ratc_chaos as chaos;
pub use ratc_config as config;
pub use ratc_core as core;
pub use ratc_harness as harness;
pub use ratc_kv as kv;
pub use ratc_obs as obs;
pub use ratc_paxos as paxos;
pub use ratc_rdma as rdma;
pub use ratc_sim as sim;
pub use ratc_spec as spec;
pub use ratc_types as types;
pub use ratc_workload as workload;
